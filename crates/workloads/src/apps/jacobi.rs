//! Jacobi stencil relaxation (extension workload).
//!
//! A `g × g` grid, row-block partitioned, ping-pong buffers, barrier per
//! sweep. Sharing is *nearest-neighbour only* — each processor reads just
//! the boundary rows of its two neighbours — the opposite extreme from
//! Floyd-Warshall's all-read-row-k pattern, and a regime where limited
//! directories never overflow (sharing degree ≤ 2). Useful as a control
//! workload: the paper's protocols should all tie here.

use crate::layout::Alloc;
use crate::rendezvous::{AppFn, ThreadedWorkload};

/// Parameters for the Jacobi workload.
#[derive(Clone, Copy, Debug)]
pub struct Jacobi {
    pub grid: u64,
    pub sweeps: u64,
}

impl Jacobi {
    /// Deterministic input field.
    pub fn input(&self, r: u64, c: u64) -> f64 {
        if r == 0 || c == 0 || r == self.grid - 1 || c == self.grid - 1 {
            // Fixed boundary.
            ((r * 31 + c * 17) % 100) as f64 / 10.0
        } else {
            0.0
        }
    }

    /// Sequential reference: the field after `sweeps` Jacobi iterations.
    pub fn reference(&self) -> Vec<f64> {
        let g = self.grid as usize;
        let mut a: Vec<f64> = (0..g * g)
            .map(|i| self.input((i / g) as u64, (i % g) as u64))
            .collect();
        let mut b = a.clone();
        for _ in 0..self.sweeps {
            for r in 1..g - 1 {
                for c in 1..g - 1 {
                    b[r * g + c] = 0.25
                        * (a[(r - 1) * g + c]
                            + a[(r + 1) * g + c]
                            + a[r * g + c - 1]
                            + a[r * g + c + 1]);
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        a
    }

    /// Two ping-pong grids.
    pub fn shared_words(&self) -> u64 {
        2 * self.grid * self.grid
    }

    /// Which buffer holds the result.
    pub fn result_buffer(&self) -> u64 {
        self.sweeps % 2
    }

    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        assert!(self.grid >= 4);
        let params = *self;
        let mut alloc = Alloc::new();
        let buf = [
            alloc.matrix(self.grid, self.grid),
            alloc.matrix(self.grid, self.grid),
        ];
        ThreadedWorkload::new(nprocs, alloc.used(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                let g = params.grid;
                let p = nprocs as u64;
                let me = tid as u64;
                // Row-block partition of interior rows 1..g-1.
                let interior = g - 2;
                let per = interior.div_ceil(p);
                let lo = 1 + me * per;
                let hi = (1 + (me + 1) * per).min(g - 1);

                // Initialize owned rows (plus boundary rows by proc 0).
                let mut init_rows: Vec<u64> = (lo..hi).collect();
                if tid == 0 {
                    init_rows.push(0);
                    init_rows.push(g - 1);
                }
                for &r in &init_rows {
                    for c in 0..g {
                        let v = params.input(r, c);
                        env.write_f(buf[0].at(r, c), v);
                        env.write_f(buf[1].at(r, c), v);
                    }
                }
                env.barrier();

                let mut cur = 0usize;
                for _sweep in 0..params.sweeps {
                    let nxt = cur ^ 1;
                    for r in lo..hi.max(lo) {
                        // Read the row above once (may belong to a
                        // neighbour processor), then stream.
                        for c in 1..g - 1 {
                            let up = env.read_f(buf[cur].at(r - 1, c));
                            let down = env.read_f(buf[cur].at(r + 1, c));
                            let left = env.read_f(buf[cur].at(r, c - 1));
                            let right = env.read_f(buf[cur].at(r, c + 1));
                            env.write_f(buf[nxt].at(r, c), 0.25 * (up + down + left + right));
                        }
                        env.work(g / 4 + 1);
                    }
                    env.barrier();
                    cur = nxt;
                }
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::w2f;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn run(params: Jacobi, nodes: u32, kind: ProtocolKind) -> Vec<f64> {
        let mut w = params.build(nodes);
        let mut m = Machine::new(MachineConfig::test_default(nodes), kind);
        m.run(&mut w);
        let g = params.grid;
        let base = params.result_buffer() * g * g;
        (0..g * g).map(|i| w2f(w.value_at(base + i))).collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 1e-12, "cell {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_sequential_reference() {
        let p = Jacobi {
            grid: 10,
            sweeps: 4,
        };
        assert_close(&run(p, 4, ProtocolKind::FullMap), &p.reference());
        assert_close(
            &run(
                p,
                4,
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
            ),
            &p.reference(),
        );
    }

    #[test]
    fn relaxation_smooths_toward_boundary_values() {
        let p = Jacobi {
            grid: 8,
            sweeps: 40,
        };
        let field = p.reference();
        let g = p.grid as usize;
        // After many sweeps every interior cell is within the boundary
        // value range (discrete maximum principle).
        let boundary: Vec<f64> = (0..g)
            .flat_map(|i| {
                [
                    p.input(0, i as u64),
                    p.input((g - 1) as u64, i as u64),
                    p.input(i as u64, 0),
                    p.input(i as u64, (g - 1) as u64),
                ]
            })
            .collect();
        let (lo, hi) = boundary
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for r in 1..g - 1 {
            for c in 1..g - 1 {
                let v = field[r * g + c];
                assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "cell ({r},{c}) = {v}");
            }
        }
    }

    #[test]
    fn sharing_degree_stays_tiny() {
        // Nearest-neighbour sharing: even Dir1NB should not thrash.
        let p = Jacobi {
            grid: 10,
            sweeps: 3,
        };
        let mut w = p.build(4);
        let mut m = Machine::new(
            MachineConfig::test_default(4),
            ProtocolKind::LimitedNB { pointers: 2 },
        );
        let out = m.run(&mut w);
        // With <= 2 sharers per block, Dir2NB never evicts pointers.
        assert_eq!(out.stats.replacement_invalidations, 0);
    }
}
