//! # dirtree-workloads — execution-driven applications
//!
//! The paper evaluates coherence protocols by running four applications on
//! the Proteus execution-driven simulator. This crate reproduces that
//! methodology: the *real algorithms* (LU decomposition, FFT,
//! Floyd-Warshall, an MP3D-style particle-in-cell code) run as Rust
//! closures on OS threads that rendezvous with the simulated machine at
//! every shared memory reference, barrier, and lock. The interleaving of
//! references therefore depends on simulated protocol latencies; the
//! bundled apps are data-race-free with interleaving-independent op
//! streams, which [`trace`] exploits to record each stream once and
//! replay it across protocol configs without the thread rendezvous.
//!
//! * [`rendezvous`] — the thread/channel machinery implementing
//!   [`dirtree_machine::Driver`];
//! * [`trace`] — record-once / replay-many op traces for sweeps;
//! * [`layout`] — a bump allocator + typed views over the shared address
//!   space;
//! * [`apps`] — the four paper applications plus synthetic
//!   microbenchmarks;
//! * [`WorkloadKind`] — a uniform constructor used by the experiment
//!   harness.

pub mod apps;
pub mod kind;
pub mod layout;
pub mod phases;
pub mod rendezvous;
pub mod trace;

pub use kind::WorkloadKind;
pub use layout::{Alloc, SharedArray};
pub use rendezvous::{Env, ThreadedWorkload};
pub use trace::{record_ops, OpTrace, ReplayDriver};
