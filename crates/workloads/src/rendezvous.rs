//! Execution-driven rendezvous between application threads and the
//! simulated machine.
//!
//! Each simulated processor runs its application code on a real OS thread.
//! The thread blocks at every shared-memory reference / synchronization
//! point and hands a request to the machine through its own rendezvous
//! channel; the machine turns it into a [`DriverOp`], simulates it, and
//! resumes the thread with the result (the loaded value, for reads) when
//! the operation completes in simulated time.
//!
//! Exactly one party runs at a time — the machine blocks until the resumed
//! thread submits its next request, and each thread has a private request
//! channel — so the simulation is fully deterministic even though real
//! threads are involved.
//!
//! Data values live in the driver (`values`), not in the protocol: the
//! machine enforces coherence *timing* and verifies coherence *invariants*,
//! while the driver's array is the architectural memory that makes the
//! applications compute real results (checked against sequential
//! references in the integration tests). A read's value is sampled — and a
//! write's value applied — when the machine reports the operation complete,
//! so values observe exactly the simulated strong-consistency order.

use crate::layout::{f2w, w2f};
use crossbeam::channel::{bounded, Receiver, Sender};
use dirtree_core::types::{Addr, NodeId};
use dirtree_machine::{Driver, DriverOp};
use dirtree_sim::Cycle;
use std::thread::JoinHandle;

/// Requests an application thread can make.
#[derive(Clone, Copy, Debug)]
enum Request {
    Read(Addr),
    Write(Addr, u64),
    Work(Cycle),
    Barrier,
    Lock(u32),
    Unlock(u32),
    Finished,
}

/// The per-thread handle through which application code touches the
/// simulated machine.
pub struct Env {
    tid: usize,
    req: Sender<Request>,
    resume: Receiver<u64>,
    dead: bool,
}

impl Env {
    fn rpc(&mut self, r: Request) -> u64 {
        if self.dead {
            return 0;
        }
        if self.req.send(r).is_err() {
            self.dead = true;
            return 0;
        }
        match self.resume.recv() {
            Ok(v) => v,
            Err(_) => {
                // The machine went away (e.g. a test aborted the run):
                // finish the program locally without simulating.
                self.dead = true;
                0
            }
        }
    }

    /// Processor id of this thread.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Shared load (one simulated memory reference).
    pub fn read(&mut self, addr: Addr) -> u64 {
        self.rpc(Request::Read(addr))
    }

    /// Shared store (one simulated memory reference).
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.rpc(Request::Write(addr, value));
    }

    /// Shared load of a float.
    pub fn read_f(&mut self, addr: Addr) -> f64 {
        w2f(self.read(addr))
    }

    /// Shared store of a float.
    pub fn write_f(&mut self, addr: Addr, value: f64) {
        self.write(addr, f2w(value));
    }

    /// Local computation for `cycles` cycles.
    pub fn work(&mut self, cycles: Cycle) {
        self.rpc(Request::Work(cycles));
    }

    /// Global barrier across all processors.
    pub fn barrier(&mut self) {
        self.rpc(Request::Barrier);
    }

    /// Acquire lock `id`.
    pub fn lock(&mut self, id: u32) {
        self.rpc(Request::Lock(id));
    }

    /// Release lock `id`.
    pub fn unlock(&mut self, id: u32) {
        self.rpc(Request::Unlock(id));
    }
}

/// Per-application-thread program.
pub type AppFn = Box<dyn FnOnce(&mut Env) + Send + 'static>;

enum ThreadState {
    /// Thread started; it sends its first request without being resumed.
    Fresh,
    /// The machine owes the thread a resume for this completed request.
    Completing(Request),
    Finished,
}

struct ThreadCtl {
    resume: Sender<u64>,
    req: Receiver<Request>,
    state: ThreadState,
}

/// An execution-driven workload: one OS thread per simulated processor.
pub struct ThreadedWorkload {
    threads: Vec<ThreadCtl>,
    values: Vec<u64>,
    handles: Vec<JoinHandle<()>>,
    barrier_seq: Vec<u32>,
}

impl ThreadedWorkload {
    /// Spawn `nprocs` application threads; `program(tid)` builds each
    /// thread's code. `shared_words` sizes the architectural memory.
    pub fn new(nprocs: u32, shared_words: u64, mut program: impl FnMut(usize) -> AppFn) -> Self {
        let mut threads = Vec::with_capacity(nprocs as usize);
        let mut handles = Vec::with_capacity(nprocs as usize);
        for tid in 0..nprocs as usize {
            let (resume_tx, resume_rx) = bounded::<u64>(1);
            let (req_tx, req_rx) = bounded::<Request>(1);
            let app = program(tid);
            let handle = std::thread::Builder::new()
                .name(format!("sim-proc-{tid}"))
                .spawn(move || {
                    let mut env = Env {
                        tid,
                        req: req_tx,
                        resume: resume_rx,
                        dead: false,
                    };
                    app(&mut env);
                    let _ = env.req.send(Request::Finished);
                })
                .expect("spawn workload thread");
            threads.push(ThreadCtl {
                resume: resume_tx,
                req: req_rx,
                state: ThreadState::Fresh,
            });
            handles.push(handle);
        }
        Self {
            threads,
            values: vec![0; shared_words as usize],
            handles,
            barrier_seq: vec![0; nprocs as usize],
        }
    }

    /// Number of simulated processors (application threads).
    pub fn nprocs(&self) -> usize {
        self.threads.len()
    }

    /// Architectural memory contents after (or during) a run.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    pub fn value_at(&self, addr: Addr) -> u64 {
        self.values[addr as usize]
    }

    pub fn float_at(&self, addr: Addr) -> f64 {
        w2f(self.values[addr as usize])
    }
}

impl Driver for ThreadedWorkload {
    fn next_op(&mut self, node: NodeId, _now: Cycle) -> DriverOp {
        let n = node as usize;
        // Settle the completed request: apply its architectural effect and
        // resume the thread with the result.
        match std::mem::replace(&mut self.threads[n].state, ThreadState::Fresh) {
            ThreadState::Finished => {
                self.threads[n].state = ThreadState::Finished;
                return DriverOp::Done;
            }
            ThreadState::Fresh => {}
            ThreadState::Completing(req) => {
                let value = match req {
                    Request::Read(a) => self.values[a as usize],
                    Request::Write(a, v) => {
                        self.values[a as usize] = v;
                        0
                    }
                    _ => 0,
                };
                if self.threads[n].resume.send(value).is_err() {
                    // Thread panicked; surface it via join in Drop.
                    self.threads[n].state = ThreadState::Finished;
                    return DriverOp::Done;
                }
            }
        }
        // Collect the thread's next request (it is the only runnable
        // thread, so this recv is a deterministic rendezvous).
        let req = match self.threads[n].req.recv() {
            Ok(r) => r,
            Err(_) => {
                self.threads[n].state = ThreadState::Finished;
                return DriverOp::Done;
            }
        };
        let op = match req {
            Request::Read(a) => DriverOp::Read(a),
            Request::Write(a, _) => DriverOp::Write(a),
            Request::Work(c) => DriverOp::Work(c),
            Request::Barrier => {
                let seq = self.barrier_seq[n];
                self.barrier_seq[n] += 1;
                DriverOp::Barrier(seq)
            }
            Request::Lock(id) => DriverOp::Lock(id),
            Request::Unlock(id) => DriverOp::Unlock(id),
            Request::Finished => {
                self.threads[n].state = ThreadState::Finished;
                return DriverOp::Done;
            }
        };
        self.threads[n].state = ThreadState::Completing(req);
        op
    }
}

impl Drop for ThreadedWorkload {
    fn drop(&mut self) {
        // Close all channels so blocked threads observe disconnection and
        // run to completion locally, then join them.
        self.threads.clear();
        while let Some(h) = self.handles.pop() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    fn run(
        nodes: u32,
        kind: ProtocolKind,
        words: u64,
        program: impl FnMut(usize) -> AppFn,
    ) -> (dirtree_machine::RunOutcome, ThreadedWorkload) {
        let mut workload = ThreadedWorkload::new(nodes, words, program);
        let mut machine = Machine::new(MachineConfig::test_default(nodes), kind);
        let out = machine.run(&mut workload);
        (out, workload)
    }

    #[test]
    fn single_thread_counts_in_shared_memory() {
        let (_, w) = run(2, ProtocolKind::FullMap, 4, |tid| {
            Box::new(move |env| {
                if tid == 0 {
                    for i in 0..10u64 {
                        let v = env.read(0);
                        env.write(0, v + i);
                    }
                }
            })
        });
        assert_eq!(w.value_at(0), (0..10).sum::<u64>());
    }

    #[test]
    fn producer_consumer_through_barrier() {
        let (_, w) = run(
            4,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            8,
            |tid| {
                Box::new(move |env| {
                    if tid == 0 {
                        env.write(3, 42);
                    }
                    env.barrier();
                    let v = env.read(3);
                    env.write(4 + tid as u64, v * 2);
                })
            },
        );
        for tid in 0..4u64 {
            assert_eq!(w.value_at(4 + tid), 84, "tid {tid} read a stale value");
        }
    }

    #[test]
    fn lock_protected_increments_do_not_race() {
        let (_, w) = run(8, ProtocolKind::FullMap, 2, |_| {
            Box::new(move |env| {
                for _ in 0..5 {
                    env.lock(1);
                    let v = env.read(0);
                    env.work(3);
                    env.write(0, v + 1);
                    env.unlock(1);
                }
            })
        });
        assert_eq!(w.value_at(0), 40);
    }

    #[test]
    fn floats_roundtrip_through_shared_memory() {
        let (_, w) = run(2, ProtocolKind::FullMap, 2, |tid| {
            Box::new(move |env| {
                if tid == 0 {
                    env.write_f(1, -2.5);
                }
                env.barrier();
                let x = env.read_f(1);
                if tid == 1 {
                    env.write_f(0, x * 2.0);
                }
            })
        });
        assert_eq!(w.float_at(0), -5.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            run(
                4,
                ProtocolKind::DirTree {
                    pointers: 2,
                    arity: 2,
                },
                64,
                |tid| {
                    Box::new(move |env| {
                        for i in 0..20u64 {
                            let a = (i * 7 + tid as u64) % 32;
                            let v = env.read(a);
                            env.write((a + 1) % 32, v + 1);
                        }
                        env.barrier();
                    })
                },
            )
            .0
        };
        let a = go();
        let b = go();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.messages, b.stats.messages);
    }

    #[test]
    fn same_program_same_result_across_protocols() {
        // Phase-structured so the data-flow (not the interleaving) fixes
        // the result: thread 0 publishes, a barrier orders, all consume.
        let program = |tid: usize| -> AppFn {
            Box::new(move |env| {
                let mut acc = 0u64;
                for phase in 0..4u64 {
                    if tid == 0 {
                        for a in 0..8u64 {
                            env.write(a, phase * 10 + a);
                        }
                    }
                    env.barrier();
                    for a in 0..8u64 {
                        acc += env.read(a);
                    }
                    env.barrier();
                }
                env.write(8 + tid as u64, acc);
            })
        };
        let (_, w1) = run(4, ProtocolKind::FullMap, 16, program);
        let (_, w2) = run(
            4,
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            16,
            program,
        );
        let (_, w3) = run(4, ProtocolKind::LimitedNB { pointers: 1 }, 16, program);
        assert_eq!(w1.values(), w2.values());
        assert_eq!(w1.values(), w3.values());
    }
}
