//! Phase-structured seeded random traces.
//!
//! The differential tests drive every protocol with the same randomized
//! (but seeded) operation trace: per phase, a deterministic owner writes
//! each block, a barrier orders the phase, then every processor reads a
//! private random subset of blocks and folds the loaded values into a
//! running checksum, published to a per-processor checksum word at the
//! end. The checksums are the *per-processor read values* — any protocol
//! that ever serves one stale load diverges from the full-map oracle.
//!
//! The generator lives here (rather than inline in the test) so the
//! integration tests, the model-checker harnesses, and future fuzz drivers
//! all stress protocols with the same trace family.

use crate::rendezvous::{AppFn, ThreadedWorkload};
use dirtree_sim::SimRng;

/// Parameters of one phase-structured trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhasedTrace {
    pub nodes: u32,
    /// Shared data blocks (checksum words are allocated after them).
    pub blocks: u64,
    pub phases: u64,
    /// Random reads each processor performs per phase.
    pub reads_per_phase: u64,
    pub seed: u64,
}

impl PhasedTrace {
    /// Which processor writes `block` during `phase` (deterministic,
    /// spread across all processors so ownership migrates between phases).
    pub fn owner(&self, phase: u64, block: u64) -> u64 {
        (block.wrapping_mul(7).wrapping_add(phase.wrapping_mul(13))) % self.nodes as u64
    }

    /// The value the owner publishes (protocol-independent by construction).
    pub fn published(&self, phase: u64, block: u64) -> u64 {
        phase * 1_000_003 + block * 97 + self.owner(phase, block)
    }

    /// Shared words: the data blocks plus one checksum word per processor.
    pub fn shared_words(&self) -> u64 {
        self.blocks + self.nodes as u64
    }

    /// Address of processor `tid`'s checksum word.
    pub fn checksum_addr(&self, tid: u64) -> u64 {
        self.blocks + tid
    }

    pub fn build(&self) -> ThreadedWorkload {
        let t = *self;
        ThreadedWorkload::new(self.nodes, self.shared_words(), move |tid| {
            let program: AppFn = Box::new(move |env| {
                // Each thread draws its read pattern from a private stream,
                // so the trace is random but identical across protocols.
                let mut rng = SimRng::new(t.seed ^ (tid as u64).wrapping_mul(0x9e37_79b9));
                let mut acc = 0u64;
                for phase in 0..t.phases {
                    for block in 0..t.blocks {
                        if t.owner(phase, block) == tid as u64 {
                            env.write(block, t.published(phase, block));
                        }
                    }
                    env.barrier();
                    for _ in 0..t.reads_per_phase {
                        let block = rng.gen_range(t.blocks);
                        acc = acc.wrapping_mul(31).wrapping_add(env.read(block));
                    }
                    env.barrier();
                }
                env.write(t.checksum_addr(tid as u64), acc);
            });
            program
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    #[test]
    fn trace_is_deterministic_and_checksums_are_produced() {
        let t = PhasedTrace {
            nodes: 4,
            blocks: 8,
            phases: 2,
            reads_per_phase: 6,
            seed: 42,
        };
        let run = || {
            let mut w = t.build();
            let mut m = Machine::new(MachineConfig::test_default(t.nodes), ProtocolKind::FullMap);
            m.run(&mut w);
            w.values().to_vec()
        };
        let a = run();
        assert_eq!(a, run(), "same seed must reproduce the same memory image");
        for block in 0..t.blocks {
            assert_eq!(a[block as usize], t.published(t.phases - 1, block));
        }
        for tid in 0..t.nodes as u64 {
            assert_ne!(
                a[t.checksum_addr(tid) as usize],
                0,
                "tid {tid} read nothing"
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| PhasedTrace {
            nodes: 4,
            blocks: 8,
            phases: 2,
            reads_per_phase: 6,
            seed,
        };
        let run = |t: PhasedTrace| {
            let mut w = t.build();
            let mut m = Machine::new(MachineConfig::test_default(t.nodes), ProtocolKind::FullMap);
            m.run(&mut w);
            w.values().to_vec()
        };
        assert_ne!(run(mk(1)), run(mk(2)), "checksums must depend on the seed");
    }
}
