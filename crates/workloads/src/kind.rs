//! Uniform workload construction for the experiment harness.

use crate::apps::{
    fft::Fft, floyd::Floyd, jacobi::Jacobi, lu::Lu, lu_blocked::LuBlocked, mp3d::Mp3d, patterns,
    synthetic,
};
use crate::rendezvous::ThreadedWorkload;

/// A workload selector with its parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadKind {
    /// MP3D-style particle simulation (Figure 8).
    Mp3d { particles: u64, steps: u64 },
    /// Dense LU factorization, column variant (Figure 9).
    Lu { n: u64 },
    /// SPLASH-style blocked LU (Figure 9, working-set-faithful variant).
    LuBlocked { n: u64, block: u64 },
    /// Floyd-Warshall all-pairs shortest paths (Figure 10).
    Floyd { vertices: u64, seed: u64 },
    /// Radix-2 FFT (Figure 11).
    Fft { points: u64 },
    /// Jacobi stencil (extension: nearest-neighbour-only sharing).
    Jacobi { grid: u64, sweeps: u64 },
    /// Synthetic: P-reader / 1-writer sharing.
    Sharing { blocks: u64, rounds: u64 },
    /// Synthetic: migratory token passing.
    Migratory { blocks: u64, rounds: u64 },
    /// Synthetic: cache-thrashing replacement storm.
    Storm { words: u64, passes: u64 },
    /// Pattern: producer–consumer pipeline (best served by updates).
    PcPipeline { buffers: u64, rounds: u64 },
    /// Pattern: migratory token ring (best served by invalidation).
    TokenRing { tokens: u64, laps: u64 },
    /// Pattern: read-mostly broadcast table (best served by updates).
    Broadcast {
        blocks: u64,
        rounds: u64,
        scans: u64,
    },
    /// Pattern: write-shared ping-pong over once-shared blocks (the update
    /// protocol's stale-sharer pathology; best served by invalidation).
    FalseShare { blocks: u64, rounds: u64 },
}

impl WorkloadKind {
    /// The paper's four applications at their published sizes.
    pub fn paper_apps() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Mp3d {
                particles: 3000,
                steps: 10,
            },
            WorkloadKind::Lu { n: 128 },
            WorkloadKind::Floyd {
                vertices: 32,
                seed: 1996,
            },
            WorkloadKind::Fft { points: 1024 },
        ]
    }

    /// Scaled-down variants for quick runs and CI.
    pub fn small_apps() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Mp3d {
                particles: 300,
                steps: 4,
            },
            WorkloadKind::Lu { n: 32 },
            WorkloadKind::Floyd {
                vertices: 16,
                seed: 1996,
            },
            WorkloadKind::Fft { points: 256 },
        ]
    }

    pub fn name(&self) -> String {
        match self {
            WorkloadKind::Mp3d { particles, steps } => format!("MP3D({particles}p,{steps}s)"),
            WorkloadKind::Lu { n } => format!("LU({n}x{n})"),
            WorkloadKind::LuBlocked { n, block } => format!("LUb({n}x{n},B{block})"),
            WorkloadKind::Floyd { vertices, .. } => format!("Floyd({vertices}v)"),
            WorkloadKind::Fft { points } => format!("FFT({points})"),
            WorkloadKind::Jacobi { grid, sweeps } => format!("Jacobi({grid}x{grid},{sweeps}s)"),
            WorkloadKind::Sharing { blocks, rounds } => format!("Sharing({blocks}b,{rounds}r)"),
            WorkloadKind::Migratory { blocks, rounds } => {
                format!("Migratory({blocks}b,{rounds}r)")
            }
            WorkloadKind::Storm { words, passes } => format!("Storm({words}w,{passes}p)"),
            WorkloadKind::PcPipeline { buffers, rounds } => {
                format!("PcPipeline({buffers}b,{rounds}r)")
            }
            WorkloadKind::TokenRing { tokens, laps } => format!("TokenRing({tokens}t,{laps}l)"),
            WorkloadKind::Broadcast {
                blocks,
                rounds,
                scans,
            } => format!("Broadcast({blocks}b,{rounds}r,{scans}s)"),
            WorkloadKind::FalseShare { blocks, rounds } => {
                format!("FalseShare({blocks}b,{rounds}r)")
            }
        }
    }

    /// Derive the workload variant for a non-default sweep seed: workloads
    /// that consume an RNG (Floyd's random graph) fold the salt into their
    /// seed; deterministic-layout workloads are unchanged. Salt 0 is the
    /// identity, so seed-0 sweep configs reproduce the paper's published
    /// inputs exactly.
    pub fn with_seed(self, salt: u64) -> WorkloadKind {
        if salt == 0 {
            return self;
        }
        match self {
            WorkloadKind::Floyd { vertices, seed } => WorkloadKind::Floyd {
                vertices,
                seed: seed ^ salt,
            },
            other => other,
        }
    }

    /// Build the execution-driven workload for `nprocs` processors.
    pub fn build(&self, nprocs: u32) -> ThreadedWorkload {
        match *self {
            WorkloadKind::Mp3d { particles, steps } => Mp3d {
                particles,
                steps,
                grid: 8,
                seed: 1996,
            }
            .build(nprocs),
            WorkloadKind::Lu { n } => Lu { n }.build(nprocs),
            WorkloadKind::LuBlocked { n, block } => LuBlocked { n, block }.build(nprocs),
            WorkloadKind::Floyd { vertices, seed } => Floyd { vertices, seed }.build(nprocs),
            WorkloadKind::Fft { points } => Fft { points }.build(nprocs),
            WorkloadKind::Jacobi { grid, sweeps } => Jacobi { grid, sweeps }.build(nprocs),
            WorkloadKind::Sharing { blocks, rounds } => {
                synthetic::Sharing { blocks, rounds }.build(nprocs)
            }
            WorkloadKind::Migratory { blocks, rounds } => {
                synthetic::Migratory { blocks, rounds }.build(nprocs)
            }
            WorkloadKind::Storm { words, passes } => {
                synthetic::Storm { words, passes }.build(nprocs)
            }
            WorkloadKind::PcPipeline { buffers, rounds } => {
                patterns::PcPipeline { buffers, rounds }.build(nprocs)
            }
            WorkloadKind::TokenRing { tokens, laps } => {
                patterns::TokenRing { tokens, laps }.build(nprocs)
            }
            WorkloadKind::Broadcast {
                blocks,
                rounds,
                scans,
            } => patterns::Broadcast {
                blocks,
                rounds,
                scans,
            }
            .build(nprocs),
            WorkloadKind::FalseShare { blocks, rounds } => {
                patterns::FalseShare { blocks, rounds }.build(nprocs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::{Machine, MachineConfig};

    #[test]
    fn names_are_informative() {
        assert_eq!(WorkloadKind::Lu { n: 128 }.name(), "LU(128x128)");
        assert_eq!(
            WorkloadKind::Mp3d {
                particles: 3000,
                steps: 10
            }
            .name(),
            "MP3D(3000p,10s)"
        );
    }

    #[test]
    fn paper_apps_match_section4() {
        let apps = WorkloadKind::paper_apps();
        assert_eq!(apps.len(), 4);
        assert!(apps.contains(&WorkloadKind::Lu { n: 128 }));
        assert!(apps.contains(&WorkloadKind::Floyd {
            vertices: 32,
            seed: 1996
        }));
    }

    #[test]
    fn every_small_app_runs_verified_on_dirtree() {
        for app in WorkloadKind::small_apps() {
            // Even smaller: shrink further for unit-test time.
            let tiny = match app {
                WorkloadKind::Mp3d { .. } => WorkloadKind::Mp3d {
                    particles: 40,
                    steps: 2,
                },
                WorkloadKind::Lu { .. } => WorkloadKind::Lu { n: 10 },
                WorkloadKind::Floyd { seed, .. } => WorkloadKind::Floyd { vertices: 8, seed },
                WorkloadKind::Fft { .. } => WorkloadKind::Fft { points: 32 },
                other => other,
            };
            let mut w = tiny.build(4);
            let mut m = Machine::new(
                MachineConfig::test_default(4),
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
            );
            let out = m.run(&mut w);
            assert!(out.stats.total_ops() > 0, "{} did nothing", tiny.name());
        }
    }
}
