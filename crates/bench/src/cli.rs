//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary accepts the sweep-runner flags:
//!
//! - `--jobs N` — worker threads (default: available parallelism)
//! - `--no-cache` — ignore cached results, re-simulate everything
//! - `--out-dir PATH` — sweep output root (default `target/sweep`)
//! - `--trace` — dump a Chrome-trace-format event timeline per config
//!   under `<out-dir>/trace/` (forces re-simulation; cached records
//!   carry no timeline)
//! - `--full` — the paper's exact workload sizes instead of scaled-down
//! - `--filter SUBSTR` — `reproduce_all` only: run the experiments whose
//!   name contains the substring
//!
//! Flags may be written `--flag value` or `--flag=value`.

use crate::runner::SweepOptions;
use std::path::PathBuf;

#[derive(Clone, Debug, Default)]
pub struct Cli {
    pub jobs: Option<usize>,
    pub no_cache: bool,
    pub trace: bool,
    pub full: bool,
    pub filter: Option<String>,
    pub out_dir: Option<PathBuf>,
}

impl Cli {
    /// Parse the process arguments. Unknown flags warn and are ignored so
    /// older invocations keep working.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            match flag.as_str() {
                "--jobs" => {
                    cli.jobs = take_value(&flag, inline.clone(), &mut args)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1);
                    if cli.jobs.is_none() {
                        eprintln!("warning: --jobs needs a positive integer");
                    }
                }
                "--no-cache" => cli.no_cache = true,
                "--trace" => cli.trace = true,
                "--full" => cli.full = true,
                "--filter" => cli.filter = take_value(&flag, inline.clone(), &mut args),
                "--out-dir" => {
                    cli.out_dir = take_value(&flag, inline.clone(), &mut args).map(PathBuf::from)
                }
                other => eprintln!("warning: ignoring unknown flag {other}"),
            }
        }
        cli
    }

    /// The runner options implied by the parsed flags.
    pub fn sweep_options(&self) -> SweepOptions {
        let mut opts = SweepOptions::default();
        if let Some(jobs) = self.jobs {
            opts.jobs = jobs;
        }
        opts.no_cache = self.no_cache;
        opts.trace = self.trace;
        if let Some(dir) = &self.out_dir {
            opts.out_dir = dir.clone();
        }
        opts
    }
}

fn take_value(
    flag: &str,
    inline: Option<String>,
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
) -> Option<String> {
    let v = inline.or_else(|| args.next());
    if v.is_none() {
        eprintln!("warning: {flag} needs a value");
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&[
            "--jobs",
            "4",
            "--no-cache",
            "--trace",
            "--full",
            "--filter=fig",
            "--out-dir",
            "/tmp/x",
        ]);
        assert_eq!(cli.jobs, Some(4));
        assert!(cli.no_cache);
        assert!(cli.trace);
        assert!(cli.full);
        assert_eq!(cli.filter.as_deref(), Some("fig"));
        assert_eq!(cli.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        let opts = cli.sweep_options();
        assert_eq!(opts.jobs, 4);
        assert!(opts.no_cache);
        assert!(opts.trace);
    }

    #[test]
    fn equals_form_and_defaults() {
        let cli = parse(&["--jobs=2"]);
        assert_eq!(cli.jobs, Some(2));
        assert!(!cli.no_cache && !cli.trace && !cli.full && cli.filter.is_none());
        let cli = parse(&[]);
        assert!(cli.jobs.is_none());
        assert!(cli.sweep_options().jobs >= 1);
    }

    #[test]
    fn bad_jobs_is_ignored_with_warning() {
        assert_eq!(parse(&["--jobs", "zero"]).jobs, None);
        assert_eq!(parse(&["--jobs", "0"]).jobs, None);
    }
}
