//! Shared driver for the Figure 8–11 binaries.

use dirtree_analysis::experiments::{figure_grid, render_grid};
use dirtree_analysis::report::grid_to_csv;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

/// Node counts used in the paper's figures.
pub const PAPER_SIZES: [u32; 3] = [8, 16, 32];

/// Run one figure: the workload across the paper's nine protocol
/// configurations and three machine sizes, printing normalized execution
/// times (full-map = 1.000).
pub fn run_figure(title: &str, workload: WorkloadKind) {
    let protocols: Vec<ProtocolKind> = ProtocolKind::figure_set();
    let config = MachineConfig::paper_default(8);
    eprintln!(
        "running {} × {} machine sizes of {} (config fingerprint {:#x}) ...",
        protocols.len(),
        PAPER_SIZES.len(),
        workload.name(),
        config.fingerprint(),
    );
    let t0 = std::time::Instant::now();
    let cells = figure_grid(workload, &PAPER_SIZES, &protocols, MachineConfig::paper_default);
    println!(
        "{}",
        render_grid(
            &format!("{title} — normalized execution time ({})", workload.name()),
            &cells,
            &PAPER_SIZES,
        )
    );
    // Machine-readable companion (for external plotting).
    let csv_dir = std::path::Path::new("target/figures");
    let _ = std::fs::create_dir_all(csv_dir);
    let csv_path = csv_dir.join(format!(
        "{}.csv",
        workload.name().replace(['(', ')', ',', 'x'], "_")
    ));
    if std::fs::write(&csv_path, grid_to_csv(&cells)).is_ok() {
        eprintln!("wrote {}", csv_path.display());
    }
    // Companion statistics the paper discusses qualitatively.
    println!("protocol @32 procs: misses, msgs/op, invalidations, repl-invs, mean write-miss latency");
    for c in cells.iter().filter(|c| c.nodes == 32) {
        let s = &c.outcome.stats;
        println!(
            "  {:<12} misses={:<8} msgs/op={:<6.2} invs={:<7} repl={:<6} wlat={:.0}",
            c.protocol.name(),
            s.read_misses + s.write_misses,
            s.critical_messages() as f64 / s.total_ops().max(1) as f64,
            s.invalidations,
            s.replacement_invalidations,
            s.write_miss_latency.mean(),
        );
    }
    eprintln!("done in {:.1?}", t0.elapsed());
}
