//! Record-based figure grids on top of the sweep runner.
//!
//! The Figures 8–11 presentation (protocols × machine sizes, execution
//! time normalized to full-map per size) used to be rebuilt as a
//! sequential loop in every binary; it is now one [`record_grid`] call
//! that the parallel, cached [`Runner`] serves.

use crate::runner::Runner;
use crate::sweep::{RunRecord, SweepConfig, SweepSpec};
use dirtree_analysis::tables::{norm, AsciiTable};
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_sim::FxHashMap;
use dirtree_workloads::WorkloadKind;
use std::fmt::Write as _;

/// Node counts used in the paper's figures.
pub const PAPER_SIZES: [u32; 3] = [8, 16, 32];

/// One cell of a figure grid: the run's record plus its execution time
/// relative to full-map at the same node count.
#[derive(Clone, Debug)]
pub struct RecordCell {
    pub protocol: ProtocolKind,
    pub nodes: u32,
    pub normalized: f64,
    pub record: RunRecord,
}

/// Run `protocols × node_counts` of one workload through the runner and
/// normalize to the full-map baseline per node count. Full-map is
/// simulated for the baseline even when it is not in `protocols`.
pub fn record_grid(
    runner: &Runner,
    spec_name: &str,
    workload: WorkloadKind,
    node_counts: &[u32],
    protocols: &[ProtocolKind],
    configure: impl Fn(u32) -> MachineConfig,
) -> Vec<RecordCell> {
    let mut spec = SweepSpec::new(spec_name);
    for &nodes in node_counts {
        if !protocols.contains(&ProtocolKind::FullMap) {
            spec.push(SweepConfig::new(
                configure(nodes),
                ProtocolKind::FullMap,
                workload,
            ));
        }
        for &protocol in protocols {
            spec.push(SweepConfig::new(configure(nodes), protocol, workload));
        }
    }
    let outcome = runner.run(&spec);
    let by_key: FxHashMap<&str, &RunRecord> = outcome
        .records
        .iter()
        .map(|r| (r.key.as_str(), r))
        .collect();
    let record_for = |nodes: u32, protocol: ProtocolKind| -> &RunRecord {
        let key = SweepConfig::new(configure(nodes), protocol, workload).key();
        by_key.get(key.as_str()).unwrap_or_else(|| {
            panic!(
                "no record for {key} — the simulation failed: {:?}",
                outcome
                    .failures
                    .iter()
                    .map(|f| f.message.as_str())
                    .collect::<Vec<_>>()
            )
        })
    };
    let mut cells = Vec::new();
    for &nodes in node_counts {
        let base_cycles = record_for(nodes, ProtocolKind::FullMap).cycles.max(1);
        for &protocol in protocols {
            let record = record_for(nodes, protocol).clone();
            cells.push(RecordCell {
                protocol,
                nodes,
                normalized: record.cycles as f64 / base_cycles as f64,
                record,
            });
        }
    }
    cells
}

/// Render a grid as the paper presents it: one row per protocol, one
/// column per machine size, normalized execution time.
pub fn render_record_grid(title: &str, cells: &[RecordCell], node_counts: &[u32]) -> String {
    let mut header: Vec<String> = vec!["protocol".into()];
    header.extend(node_counts.iter().map(|n| format!("{n} procs")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = AsciiTable::new(&header_refs);
    let mut protocols: Vec<ProtocolKind> = Vec::new();
    for c in cells {
        if !protocols.contains(&c.protocol) {
            protocols.push(c.protocol);
        }
    }
    for p in protocols {
        let mut row = vec![p.name()];
        for &n in node_counts {
            let cell = cells
                .iter()
                .find(|c| c.protocol == p && c.nodes == n)
                .expect("missing grid cell");
            row.push(norm(cell.normalized));
        }
        t.row(&row);
    }
    format!("{title}\n{}", t.render())
}

/// Machine-readable companion CSV (same columns as the pre-runner
/// `grid_to_csv`, fed from records).
pub fn records_to_csv(cells: &[RecordCell]) -> String {
    let mut out = String::from(
        "protocol,figure_label,nodes,cycles,normalized,messages,fill_acks,\
         invalidations,replacement_invalidations,read_misses,write_misses,\
         read_miss_latency_mean,write_miss_latency_mean,net_bytes,\
         max_controller_busy\n",
    );
    for c in cells {
        let r = &c.record;
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{},{},{},{},{},{},{:.3},{:.3},{},{}",
            r.protocol,
            c.protocol.figure_label(),
            r.nodes,
            r.cycles,
            c.normalized,
            r.messages,
            r.fill_acks,
            r.invalidations,
            r.replacement_invalidations,
            r.read_misses,
            r.write_misses,
            r.read_miss_latency.mean(),
            r.write_miss_latency.mean(),
            r.net_bytes,
            r.max_controller_busy,
        );
    }
    out
}

/// Run one figure: the workload across the paper's nine protocol
/// configurations and three machine sizes. Returns the report text
/// (normalized grid + companion stats) and writes the CSV companion
/// under `target/figures/`.
pub fn run_figure(runner: &Runner, title: &str, workload: WorkloadKind) -> String {
    let protocols: Vec<ProtocolKind> = ProtocolKind::figure_set();
    let slug = workload.name().replace(['(', ')', ',', 'x'], "_");
    eprintln!(
        "running {} × {} machine sizes of {} (config fingerprint {:#x}) ...",
        protocols.len(),
        PAPER_SIZES.len(),
        workload.name(),
        MachineConfig::paper_default(8).fingerprint(),
    );
    let t0 = std::time::Instant::now();
    let cells = record_grid(
        runner,
        &format!("figure-{slug}"),
        workload,
        &PAPER_SIZES,
        &protocols,
        MachineConfig::paper_default,
    );
    let mut report = render_record_grid(
        &format!("{title} — normalized execution time ({})", workload.name()),
        &cells,
        &PAPER_SIZES,
    );
    report.push('\n');
    // Machine-readable companion (for external plotting).
    let csv_dir = std::path::Path::new("target/figures");
    let _ = std::fs::create_dir_all(csv_dir);
    let csv_path = csv_dir.join(format!("{slug}.csv"));
    if std::fs::write(&csv_path, records_to_csv(&cells)).is_ok() {
        eprintln!("wrote {}", csv_path.display());
    }
    // Companion statistics the paper discusses qualitatively.
    let _ = writeln!(
        report,
        "protocol @32 procs: misses, msgs/op, invalidations, repl-invs, mean write-miss latency"
    );
    for c in cells.iter().filter(|c| c.nodes == 32) {
        let r = &c.record;
        let _ = writeln!(
            report,
            "  {:<12} misses={:<8} msgs/op={:<6.2} invs={:<7} repl={:<6} wlat={:.0}",
            r.protocol,
            r.read_misses + r.write_misses,
            r.critical_messages() as f64 / r.total_ops().max(1) as f64,
            r.invalidations,
            r.replacement_invalidations,
            r.write_miss_latency.mean(),
        );
    }
    eprintln!("done in {:.1?}", t0.elapsed());
    report
}
