//! Every experiment of the reproduction as a library function.
//!
//! Each function builds its configurations, runs them through the shared
//! sweep [`Runner`] (parallel + cached), and returns the report text. The
//! binaries in `src/bin/` are thin wrappers; `reproduce_all` iterates the
//! [`registry`] in-process so a panic in one experiment is caught,
//! reported in the final `FAILED:` summary, and does not stop the rest.
//!
//! Analytic experiments (Tables 3/4, tree shapes, memory overhead) and
//! the controlled-sharing-degree measurements (Table 1, the latency
//! model) do not go through the runner: they are closed-form or
//! millisecond-scale scripted runs with no caching value.

use crate::figures::{record_grid, run_figure, RecordCell};
use crate::miss_cost::{read_miss_cost, write_miss_cost, write_miss_latency_measured};
use crate::runner::Runner;
use crate::sweep::{RunRecord, SweepConfig, SweepSpec};
use dirtree_analysis::formulas::{self, directory_bits, write_miss_latency_model, LatencyParams};
use dirtree_analysis::tables::AsciiTable;
use dirtree_analysis::tree_capacity::{
    binary_tree_nodes, max_nodes_at_level, n1, n2, TreeBuilder, PAPER_TABLE4,
};
use dirtree_core::cache::CacheConfig;
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};
use dirtree_machine::{MachineConfig, TopologyKind};
use dirtree_net::NetworkConfig;
use dirtree_workloads::WorkloadKind;
use std::fmt::Write as _;

/// One experiment: a stable name (used by `--filter` and the report
/// headings) and the function producing its report.
pub struct Experiment {
    pub name: &'static str,
    pub run: fn(&Runner, bool) -> String,
}

/// Every experiment `reproduce_all` runs, in report order. The `scaling`
/// study (to 128 processors) is intentionally not here — it is an
/// explicit opt-in via its own binary.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            run: |_, _| table1(),
        },
        Experiment {
            name: "table3",
            run: |_, _| table3(),
        },
        Experiment {
            name: "table4",
            run: |_, _| table4(),
        },
        Experiment {
            name: "tree_shapes",
            run: |_, _| tree_shapes(),
        },
        Experiment {
            name: "memory_overhead",
            run: |_, _| memory_overhead(),
        },
        Experiment {
            name: "fig8_mp3d",
            run: fig8_mp3d,
        },
        Experiment {
            name: "fig9_lu",
            run: fig9_lu,
        },
        Experiment {
            name: "fig10_floyd",
            run: |r, _| fig10_floyd(r),
        },
        Experiment {
            name: "fig11_fft",
            run: fig11_fft,
        },
        Experiment {
            name: "sharing_profile",
            run: |r, _| sharing_profile(r),
        },
        Experiment {
            name: "latency_model",
            run: |_, _| latency_model(),
        },
        Experiment {
            name: "bus_vs_cube",
            run: |r, _| bus_vs_cube(r),
        },
        Experiment {
            name: "sensitivity",
            run: |r, _| sensitivity(r),
        },
        Experiment {
            name: "ablation_replacement",
            run: |r, _| ablation_replacement(r),
        },
        Experiment {
            name: "ablation_pairing",
            run: |r, _| ablation_pairing(r),
        },
        Experiment {
            name: "ablation_update",
            run: |r, _| ablation_update(r),
        },
        Experiment {
            name: "ablation_arity",
            run: |r, _| ablation_arity(r),
        },
    ]
}

// ---------------------------------------------------------------------
// Figures 8–11 (normalized execution time grids)
// ---------------------------------------------------------------------

/// **Figure 8** — MP3D. Default 600 particles × 4 steps; `--full` uses
/// the paper's 3000 × 10.
pub fn fig8_mp3d(runner: &Runner, full: bool) -> String {
    let w = if full {
        WorkloadKind::Mp3d {
            particles: 3000,
            steps: 10,
        }
    } else {
        WorkloadKind::Mp3d {
            particles: 600,
            steps: 4,
        }
    };
    run_figure(runner, "Figure 8", w)
}

/// **Figure 9** — LU decomposition. Default 48×48; `--full` is 128×128.
pub fn fig9_lu(runner: &Runner, full: bool) -> String {
    let w = if full {
        WorkloadKind::Lu { n: 128 }
    } else {
        WorkloadKind::Lu { n: 48 }
    };
    run_figure(runner, "Figure 9", w)
}

/// **Figure 10** — Floyd-Warshall at the paper's exact 32-vertex size.
pub fn fig10_floyd(runner: &Runner) -> String {
    run_figure(
        runner,
        "Figure 10",
        WorkloadKind::Floyd {
            vertices: 32,
            seed: 1996,
        },
    )
}

/// **Figure 11** — FFT. Default 512 points; `--full` is 1024.
pub fn fig11_fft(runner: &Runner, full: bool) -> String {
    let w = if full {
        WorkloadKind::Fft { points: 1024 }
    } else {
        WorkloadKind::Fft { points: 512 }
    };
    run_figure(runner, "Figure 11", w)
}

/// All four figure grids back to back (the `all_figures` binary).
pub fn all_figures(runner: &Runner, full: bool) -> String {
    let mut out = String::new();
    out.push_str(&fig8_mp3d(runner, full));
    out.push('\n');
    out.push_str(&fig9_lu(runner, full));
    out.push('\n');
    out.push_str(&fig10_floyd(runner));
    out.push('\n');
    out.push_str(&fig11_fft(runner, full));
    out
}

// ---------------------------------------------------------------------
// Table 1 and the latency model (controlled sharing degrees; sequential)
// ---------------------------------------------------------------------

/// **Table 1** — messages generated by a read or write miss per protocol:
/// measured marginal message counts next to the paper's analytic column.
pub fn table1() -> String {
    fn fmt_range((lo, hi): (u64, u64)) -> String {
        if lo == hi {
            lo.to_string()
        } else {
            format!("{lo}..{hi}")
        }
    }
    let p = 8u32; // sharers when the write arrives
    let protocols = [
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::LimitedB { pointers: 4 },
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: messages per read / write miss (P = {p} sharers)"
    );
    let _ = writeln!(
        out,
        "(measured = marginal critical-path messages on the simulated machine)"
    );
    let mut t = AsciiTable::new(&[
        "protocol",
        "read (paper)",
        "read (measured)",
        "write (paper)",
        "write (measured)",
    ]);
    for kind in protocols {
        let read_paper = fmt_range(formulas::read_miss_messages(kind, p as u64));
        let write_paper = fmt_range(formulas::write_miss_messages(kind, p as u64));
        // Marginal read at sharing degree p (the p-th reader joining).
        let read_meas = read_miss_cost(kind, p);
        let write_meas = write_miss_cost(kind, p);
        t.row(&[
            kind.name(),
            read_paper,
            read_meas.to_string(),
            write_paper,
            write_meas.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Notes: Dir_iNB / Dir_iB / LimitLESS measured write costs reflect their\n\
         overflow handling at P > i (extra invalidations, broadcast to n-1 nodes,\n\
         or software-walk occupancy, respectively). List/tree measured costs\n\
         include the home grant round-trip our home-centric variants add; see\n\
         DESIGN.md §3."
    );
    out
}

/// **Model validation (ours)** — analytic write-miss latency vs. the
/// simulator at controlled sharing degrees.
pub fn latency_model() -> String {
    let lp = LatencyParams::default();
    let kinds = [
        ProtocolKind::FullMap,
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Write-miss critical-path latency, model vs. simulator (32 procs):"
    );
    let mut header = vec!["protocol".to_string()];
    for p in [2u32, 4, 8, 16, 24] {
        header.push(format!("P={p} model"));
        header.push(format!("P={p} meas"));
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = AsciiTable::new(&hdr);
    for kind in kinds {
        let mut row = vec![kind.name()];
        for p in [2u32, 4, 8, 16, 24] {
            row.push(format!(
                "{:.0}",
                write_miss_latency_model(kind, p as u64, &lp)
            ));
            row.push(format!("{:.0}", write_miss_latency_measured(kind, p)));
        }
        t.row(&row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Expected shape: full-map and the lists grow linearly in P; STP and\n\
         Dir4Tree2 grow logarithmically. Absolute agreement is approximate\n\
         (the model ignores secondary contention)."
    );
    out
}

// ---------------------------------------------------------------------
// Tables 3/4, tree shapes, memory overhead (closed-form)
// ---------------------------------------------------------------------

/// **Table 3** — the N₁(j) / N₂(j) recurrences for Dir₂Tree₂, printed
/// next to the insertion-replay measurement.
pub fn table3() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: number of processors per tree for Dir2Tree2");
    let mut t = AsciiTable::new(&["level j", "N1(j)", "N2(j)", "replayed total", "N1+N2"]);
    for j in 1..=12u64 {
        // Replay insertions until both trees reach level j.
        let mut b = TreeBuilder::new(2);
        let mut total_at_level = 0;
        loop {
            b.insert();
            if b.max_level() > j as u32 {
                break;
            }
            total_at_level = b.total();
        }
        t.row(&[
            j.to_string(),
            n1(j).to_string(),
            n2(j).to_string(),
            total_at_level.to_string(),
            (n1(j) + n2(j)).to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "N1(j) = j (a chain); N2(j) = j(j+1)/2 — as simplified in §3."
    );
    out
}

/// **Table 4** — maximum nodes vs. tree level against the paper's
/// published integers.
pub fn table4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: maximum nodes vs. tree level");
    let mut t = AsciiTable::new(&[
        "level",
        "Dir2Tree2",
        "paper",
        "Dir4Tree2",
        "paper",
        "binary tree",
        "paper",
    ]);
    let mut mismatches = 0;
    for (level, p2, p4, pb) in PAPER_TABLE4 {
        let d2 = max_nodes_at_level(2, level);
        let d4 = max_nodes_at_level(4, level);
        let b = binary_tree_nodes(level);
        for (ours, paper) in [(d2, p2), (d4, p4), (b, pb)] {
            if ours != paper {
                mismatches += 1;
            }
        }
        t.row(&[
            level.to_string(),
            d2.to_string(),
            p2.to_string(),
            d4.to_string(),
            p4.to_string(),
            b.to_string(),
            pb.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    if mismatches == 0 {
        let _ = writeln!(out, "All cells match the paper exactly.");
    } else {
        let _ = writeln!(
            out,
            "{mismatches} cells differ from the paper (see EXPERIMENTS.md for the \
             selection-rule discussion)."
        );
    }
    let _ = writeln!(
        out,
        "\nA 1024-node Dir4Tree2 forest: level {} (paper: 12, one more than the \
         balanced binary tree's 11).",
        (3..=20u32)
            .find(|&l| max_nodes_at_level(4, l) >= 1024)
            .unwrap()
    );
    out
}

/// **Figures 1, 5 and 7** — the Dir₄Tree₂ forest built by 14 sequential
/// read misses, the merge performed by the 15th, and the write-miss
/// invalidation fan-out over the resulting forest.
pub fn tree_shapes() -> String {
    fn print_forest(out: &mut String, b: &TreeBuilder, label: &str) {
        let _ = writeln!(out, "{label}");
        for (i, p) in b.pointers().iter().enumerate() {
            match p {
                Some((root, level, size)) => {
                    let _ = writeln!(
                        out,
                        "  pointer {i}: -> node {root} (level {level}, {size} nodes)"
                    );
                }
                None => {
                    let _ = writeln!(out, "  pointer {i}: null");
                }
            }
        }
    }
    let mut out = String::new();
    // Figure 1: the forest after 14 read misses.
    let mut b = TreeBuilder::new(4);
    for _ in 0..14 {
        b.insert();
    }
    print_forest(
        &mut out,
        &b,
        "Figure 1 — Dir4Tree2 forest after 14 read misses:",
    );

    // Figure 5: the 15th request merges the two level-2 trees (11 and 13).
    let before: Vec<u32> = b.pointers().iter().flatten().map(|p| p.0).collect();
    b.insert();
    let after: Vec<u32> = b.pointers().iter().flatten().map(|p| p.0).collect();
    let adopted: Vec<u32> = before
        .iter()
        .filter(|r| !after.contains(r))
        .copied()
        .collect();
    let _ = writeln!(
        out,
        "\nFigure 5 — the 15th read miss: node 15 adopts the equal-height roots {adopted:?}"
    );
    print_forest(&mut out, &b, "forest after the 15th request:");

    // Figure 7: invalidation fan-out with 15 copies. With pairing, the home
    // sends one Inv per even pointer; odd pointers are invalidated by their
    // even partners; every tree node forwards to its children.
    let _ = writeln!(
        out,
        "\nFigure 7 — write-miss invalidation over the 15-copy forest:"
    );
    let live: Vec<(usize, u32, u32)> = b
        .pointers()
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|(r, l, _)| (i, r, l)))
        .collect();
    let mut home_msgs = 0;
    let mut slot = 0;
    while slot < b.pointers().len() {
        let even = live.iter().find(|&&(i, ..)| i == slot);
        let odd = live.iter().find(|&&(i, ..)| i == slot + 1);
        match (even, odd) {
            (Some(&(_, re, _)), Some(&(_, ro, _))) => {
                let _ = writeln!(out, "  home -> root {re} (Inv, also invalidate root {ro})");
                home_msgs += 1;
            }
            (Some(&(_, re, _)), None) => {
                let _ = writeln!(out, "  home -> root {re} (Inv)");
                home_msgs += 1;
            }
            (None, Some(&(_, ro, _))) => {
                let _ = writeln!(out, "  home -> root {ro} (Inv)");
                home_msgs += 1;
            }
            (None, None) => {}
        }
        slot += 2;
    }
    let max_level = live.iter().map(|&(_, _, l)| l).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "  home sends {home_msgs} Inv(s) and waits {home_msgs} ack(s);"
    );
    let _ = writeln!(
        out,
        "  invalidation depth = tallest tree level = {max_level} \
         (a balanced binary tree of 15 nodes has 4 levels)"
    );
    out
}

/// **§2 memory-requirement formulas** (experiment E11): total directory
/// bits per protocol as the machine grows.
pub fn memory_overhead() -> String {
    // Table 5 machine: 16 KB caches of 8-byte blocks; give each node the
    // same amount of shared memory as cache for a like-for-like ratio, and
    // also show a memory-heavy configuration.
    let cache_blocks = 2048u64;
    let mem_blocks = 16 * 1024; // 128 KB of shared memory per node
    let protocols = [
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
        ProtocolKind::DirTree {
            pointers: 2,
            arity: 2,
        },
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Directory memory (KiB machine-wide), {mem_blocks} memory blocks and \
         {cache_blocks} cache lines per node:"
    );
    let sizes = [8u32, 16, 32, 64, 256, 1024];
    let mut header: Vec<String> = vec!["protocol".into()];
    header.extend(sizes.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = AsciiTable::new(&header_refs);
    for kind in protocols {
        let mut row = vec![kind.name()];
        for &n in &sizes {
            let bits = directory_bits(kind, n, mem_blocks, cache_blocks);
            row.push(format!("{}", bits / 8 / 1024));
        }
        t.row(&row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Full-map grows as B·n² while Dir_iTree_k grows as B·n·2i·log n + C·k·log n (§3)."
    );
    out
}

// ---------------------------------------------------------------------
// Sweep-runner studies (ours)
// ---------------------------------------------------------------------

/// Cells of a sweep grid keyed for quick lookup by (protocol, nodes).
fn cell(cells: &[RecordCell], protocol: ProtocolKind, nodes: u32) -> &RecordCell {
    cells
        .iter()
        .find(|c| c.protocol == protocol && c.nodes == nodes)
        .unwrap_or_else(|| panic!("missing cell {} @ {nodes}", protocol.name()))
}

/// **Experiment E14** — Weber-Gupta-style invalidation profile: how many
/// other processors hold a copy at the instant of each write.
pub fn sharing_profile(runner: &Runner) -> String {
    let nodes = 16;
    let apps = [
        WorkloadKind::Mp3d {
            particles: 600,
            steps: 4,
        },
        WorkloadKind::Lu { n: 48 },
        WorkloadKind::Floyd {
            vertices: 32,
            seed: 1996,
        },
        WorkloadKind::Fft { points: 512 },
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sharing degree at writes ({nodes} processors, full-map bookkeeping):"
    );
    let mut t = AsciiTable::new(&[
        "workload", "writes", "mean", "p50", "p90", "max", "<= 4 (%)",
    ]);
    for w in apps {
        let cells = record_grid(
            runner,
            &format!("sharing-{}", w.name().replace(['(', ')', ',', 'x'], "_")),
            w,
            &[nodes],
            &[ProtocolKind::FullMap],
            MachineConfig::paper_default,
        );
        let h = &cell(&cells, ProtocolKind::FullMap, nodes)
            .record
            .sharers_at_write;
        // Fraction of writes with at most 4 sharers, from the bucketed
        // histogram: p such that percentile(p) <= 4.
        let mut le4 = 0.0;
        for pct in (1..=100).rev() {
            if h.percentile(pct as f64) <= 4 {
                le4 = pct as f64;
                break;
            }
        }
        t.row(&[
            w.name(),
            h.count().to_string(),
            format!("{:.2}", h.mean()),
            h.percentile(50.0).to_string(),
            h.percentile(90.0).to_string(),
            h.max().to_string(),
            format!("{le4:.0}"),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "The paper (after Weber & Gupta, ASPLOS-III) uses the prevalence of\n\
         low sharing degrees to size the directory at i = 4 pointers; writes\n\
         that do see wide sharing (Floyd's row k) are exactly where the tree\n\
         fan-out pays off."
    );
    out
}

/// **§1 motivation (ours)** — why non-bus networks and directories at
/// all: the shared bus saturates as processors are added, the binary
/// n-cube keeps scaling.
pub fn bus_vs_cube(runner: &Runner) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Snooping bus vs. directory n-cube (Floyd-Warshall 24v):"
    );
    let mut t = AsciiTable::new(&[
        "procs",
        "snoop/bus cycles",
        "fm/bus cycles",
        "fm/cube cycles",
        "Dir4Tree2/cube cycles",
        "snoop-bus / tree-cube",
    ]);
    let w = WorkloadKind::Floyd {
        vertices: 24,
        seed: 1996,
    };
    let sizes = [2u32, 4, 8, 16, 32];
    let tree = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };
    let bus_config = |nodes: u32| {
        let mut c = MachineConfig::paper_default(nodes);
        c.net = NetworkConfig::bus();
        c
    };
    let bus_cells = record_grid(
        runner,
        "bus-vs-cube-bus",
        w,
        &sizes,
        &[ProtocolKind::Snoop, ProtocolKind::FullMap],
        bus_config,
    );
    let cube_cells = record_grid(
        runner,
        "bus-vs-cube-cube",
        w,
        &sizes,
        &[ProtocolKind::FullMap, tree],
        MachineConfig::paper_default,
    );
    for nodes in sizes {
        let snoop = cell(&bus_cells, ProtocolKind::Snoop, nodes).record.cycles;
        let fm_bus = cell(&bus_cells, ProtocolKind::FullMap, nodes).record.cycles;
        let fm_cube = cell(&cube_cells, ProtocolKind::FullMap, nodes)
            .record
            .cycles;
        let tree_cube = cell(&cube_cells, tree, nodes).record.cycles;
        t.row(&[
            nodes.to_string(),
            snoop.to_string(),
            fm_bus.to_string(),
            fm_cube.to_string(),
            tree_cube.to_string(),
            format!("{:.2}", snoop as f64 / tree_cube as f64),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "The paper's §1 premise: \"the single bus becomes the bottleneck in the\n\
         system\" — motivating point-to-point networks and, because they lack a\n\
         broadcast medium, directory-based coherence."
    );
    out
}

/// **Beyond the paper (ours)** — extends the Figure 10 comparison to 64
/// and 128 processors. Not in [`registry`]; run via the `scaling` binary.
pub fn scaling(runner: &Runner) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scaling beyond the paper (Floyd-Warshall 64v, normalized to full-map):"
    );
    let mut t = AsciiTable::new(&[
        "procs",
        "fm cycles",
        "Dir4Tree2",
        "Dir8Tree2",
        "Dir4NB",
        "fm dir KiB",
        "Dir4Tree2 dir KiB",
    ]);
    let w = WorkloadKind::Floyd {
        vertices: 64,
        seed: 1996,
    };
    let t4k = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };
    let t8k = ProtocolKind::DirTree {
        pointers: 8,
        arity: 2,
    };
    let l4k = ProtocolKind::LimitedNB { pointers: 4 };
    let sizes = [8u32, 16, 32, 64, 128];
    let cells = record_grid(
        runner,
        "scaling",
        w,
        &sizes,
        &[ProtocolKind::FullMap, t4k, t8k, l4k],
        MachineConfig::paper_default,
    );
    for nodes in sizes {
        let fm = cell(&cells, ProtocolKind::FullMap, nodes).record.cycles;
        let mem_blocks = 16 * 1024;
        let fm_bits = directory_bits(ProtocolKind::FullMap, nodes, mem_blocks, 0);
        let t4_bits = directory_bits(t4k, nodes, mem_blocks, 0);
        t.row(&[
            nodes.to_string(),
            fm.to_string(),
            format!("{:.3}", cell(&cells, t4k, nodes).normalized),
            format!("{:.3}", cell(&cells, t8k, nodes).normalized),
            format!("{:.3}", cell(&cells, l4k, nodes).normalized),
            (fm_bits / 8 / 1024).to_string(),
            (t4_bits / 8 / 1024).to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "The performance gap and the directory-memory gap both widen with\n\
         machine size — the paper's conclusion, extrapolated."
    );
    out
}

/// The machine sizes of the [`scale_up`] study.
pub const SCALE_UP_SIZES: [u32; 3] = [64, 128, 256];

/// The machine sizes of the [`scale_up_vc`] study: the shared P=64
/// anchor (for a direct single-channel vs VC comparison and the CI
/// golden slice) plus the sizes only the VC network reaches safely.
pub const SCALE_UP_VC_SIZES: [u32; 3] = [64, 512, 1024];

/// Protocols shared by both scale-up grids (the paper's Figure-10
/// shapes: full-map vs Dir_iTree_2 vs Dir_4NB).
const SCALE_UP_PROTOCOLS: [ProtocolKind; 4] = [
    ProtocolKind::FullMap,
    ProtocolKind::DirTree {
        pointers: 2,
        arity: 2,
    },
    ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    },
    ProtocolKind::LimitedNB { pointers: 4 },
];

/// The paper machine with the request/reply/ack traffic classes on
/// three separate virtual channels and minimal-adaptive e-cube routing.
pub fn vc_default(nodes: u32) -> MachineConfig {
    let mut m = MachineConfig::paper_default(nodes);
    m.net.vcs = 3;
    m.net.adaptive = true;
    m
}

fn scale_up_sizes(all: &[u32], filter: Option<&str>) -> Vec<u32> {
    all.iter()
        .copied()
        .filter(|p| filter.is_none_or(|f| format!("P={p}").contains(f)))
        .collect()
}

/// Configurations of the [`scale_up`] hot-path study, optionally
/// restricted by a `--filter` substring matched against `P=<nodes>`
/// (so `--filter P=64` runs only the 64-processor group). Returns the
/// sizes kept and the grid cells; a filter matching none of this grid's
/// sizes (e.g. `P=512`, which only the VC grid has) returns empty.
pub fn scale_up_cells(runner: &Runner, filter: Option<&str>) -> (Vec<u32>, Vec<RecordCell>) {
    let sizes = scale_up_sizes(&SCALE_UP_SIZES, filter);
    if sizes.is_empty() {
        return (sizes, Vec::new());
    }
    let w = WorkloadKind::Floyd {
        vertices: 64,
        seed: 1996,
    };
    let cells = record_grid(
        runner,
        "scale_up",
        w,
        &sizes,
        &SCALE_UP_PROTOCOLS,
        MachineConfig::paper_default,
    );
    (sizes, cells)
}

/// The virtual-channel companion grid of [`scale_up`]: the same
/// protocols and workload on the [`vc_default`] machine at
/// P ∈ {64, 512, 1024}. Filter grammar matches [`scale_up_cells`].
pub fn scale_up_vc_cells(runner: &Runner, filter: Option<&str>) -> (Vec<u32>, Vec<RecordCell>) {
    let sizes = scale_up_sizes(&SCALE_UP_VC_SIZES, filter);
    if sizes.is_empty() {
        return (sizes, Vec::new());
    }
    let w = WorkloadKind::Floyd {
        vertices: 64,
        seed: 1996,
    };
    let cells = record_grid(
        runner,
        "scale_up_vc",
        w,
        &sizes,
        &SCALE_UP_PROTOCOLS,
        vc_default,
    );
    (sizes, cells)
}

/// Render one scale-up grid: normalized execution time plus the
/// simulator-throughput columns (`events`, `peak queue depth`) the
/// hot-path benchmark reads, and the network-wait split.
pub fn scale_up_grid_report(title: &str, sizes: &[u32], cells: &[RecordCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut t = AsciiTable::new(&[
        "procs",
        "protocol",
        "cycles",
        "norm",
        "events",
        "peak queue",
        "msgs",
        "inject wait",
        "link wait",
    ]);
    for &nodes in sizes {
        for c in cells.iter().filter(|c| c.nodes == nodes) {
            let r = &c.record;
            t.row(&[
                nodes.to_string(),
                r.protocol.clone(),
                r.cycles.to_string(),
                format!("{:.3}", c.normalized),
                r.events.to_string(),
                r.peak_queue_depth.to_string(),
                r.messages.to_string(),
                r.net_inject_wait_cycles.to_string(),
                r.net_link_wait_cycles.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Render the single-channel [`scale_up`] grid (kept as a named entry
/// point for the `scale_up` binary and its golden slice).
pub fn scale_up_report(sizes: &[u32], cells: &[RecordCell]) -> String {
    let mut out = scale_up_grid_report(
        "Hot-path scaling study (Floyd-Warshall 64v, normalized to full-map):",
        sizes,
        cells,
    );
    let _ = writeln!(
        out,
        "Per-size full-map baselines; `events` and `peak queue` are\n\
         deterministic simulator-throughput denominators (see\n\
         BENCH_sim_hotpath.json for the wall-clock side)."
    );
    out
}

/// Render the [`scale_up_vc`] grid.
pub fn scale_up_vc_report(sizes: &[u32], cells: &[RecordCell]) -> String {
    scale_up_grid_report(
        "VC scaling study (3 virtual channels, adaptive e-cube; \
         Floyd-Warshall 64v, normalized to full-map):",
        sizes,
        cells,
    )
}

/// The [`vc_default`] machine with credit-bounded injection: each
/// controller may hold at most this many unacknowledged *flits* per
/// (destination-VC) pool before further sends park. Models finite output
/// buffering instead of the default infinite-queue idealization. At the
/// paper's 8-bit links a header-only message is 8 flits and a data
/// message 16, so 64 flits ≈ eight control messages (or four data
/// messages) of buffering per pool.
pub const VC_CREDITS: u32 = 64;

/// [`vc_default`] plus credit-bounded sends ([`VC_CREDITS`] per pool).
pub fn vc_credited(nodes: u32) -> MachineConfig {
    let mut m = vc_default(nodes);
    m.net.vc_credits = VC_CREDITS;
    m
}

/// The credit-bounded companion of [`scale_up_vc_cells`]: the same
/// protocols, workload, and sizes on the [`vc_credited`] machine, so the
/// report can show what finite buffering costs next to the idealized VC
/// column. Filter grammar matches [`scale_up_cells`].
pub fn scale_up_vc_credited_cells(
    runner: &Runner,
    filter: Option<&str>,
) -> (Vec<u32>, Vec<RecordCell>) {
    let sizes = scale_up_sizes(&SCALE_UP_VC_SIZES, filter);
    if sizes.is_empty() {
        return (sizes, Vec::new());
    }
    let w = WorkloadKind::Floyd {
        vertices: 64,
        seed: 1996,
    };
    let cells = record_grid(
        runner,
        "scale_up_vc_credited",
        w,
        &sizes,
        &SCALE_UP_PROTOCOLS,
        vc_credited,
    );
    (sizes, cells)
}

/// Render the [`scale_up_vc_credited`] grid.
pub fn scale_up_vc_credited_report(sizes: &[u32], cells: &[RecordCell]) -> String {
    scale_up_grid_report(
        &format!(
            "Credit-bounded VC scaling study ({VC_CREDITS} credits per pool, \
             3 virtual channels, adaptive e-cube; Floyd-Warshall 64v, \
             normalized to full-map):"
        ),
        sizes,
        cells,
    )
}

/// **Beyond the paper (ours)** — the hot-path scaling study:
/// single-channel at P ∈ {64, 128, 256} and the virtual-channel machine
/// at P ∈ {64, 512, 1024}. Not in [`registry`] (like [`scaling`], it is
/// an explicit opt-in via the `scale_up` binary; CI's perf-smoke step
/// runs the `--filter P=64` slice of both grids).
pub fn scale_up(runner: &Runner, filter: Option<&str>) -> String {
    let (sizes, cells) = scale_up_cells(runner, filter);
    let (vc_sizes, vc_cells) = scale_up_vc_cells(runner, filter);
    let (cr_sizes, cr_cells) = scale_up_vc_credited_cells(runner, filter);
    assert!(
        !(sizes.is_empty() && vc_sizes.is_empty()),
        "--filter {:?} matches no scale-up size (base P=64/128/256, vc P=64/512/1024)",
        filter.unwrap_or_default()
    );
    let mut out = String::new();
    if !sizes.is_empty() {
        out.push_str(&scale_up_report(&sizes, &cells));
    }
    if !vc_sizes.is_empty() {
        out.push_str(&scale_up_vc_report(&vc_sizes, &vc_cells));
    }
    if !cr_sizes.is_empty() {
        out.push_str(&scale_up_vc_credited_report(&cr_sizes, &cr_cells));
    }
    out
}

/// **Sensitivity study (ours)** — how the Figure-10 protocol ranking
/// responds to the simulator knobs the paper fixes silently.
pub fn sensitivity(runner: &Runner) -> String {
    let w = WorkloadKind::Floyd {
        vertices: 32,
        seed: 1996,
    };
    let t4k = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };
    let l1k = ProtocolKind::LimitedNB { pointers: 1 };
    let base = MachineConfig::paper_default(16);

    let mut rows: Vec<(String, MachineConfig)> = vec![("paper (Table 5)".into(), base)];

    let mut no_contention = base;
    no_contention.net.contention = false;
    rows.push(("no link contention".into(), no_contention));

    let mut wide_links = base;
    wide_links.net.link_width_bits = 64;
    rows.push(("64-bit links".into(), wide_links));

    let mut small_cache = base;
    small_cache.cache = CacheConfig {
        lines: 256,
        associativity: 256,
    };
    rows.push(("2 KB caches (replacement pressure)".into(), small_cache));

    let mut slow_memory = base;
    slow_memory.mem_latency = 20;
    rows.push(("20-cycle memory".into(), slow_memory));

    let mut torus = base;
    torus.topology = TopologyKind::KaryNcube { radix: 4 };
    rows.push(("4-ary 2-cube (torus) instead of hypercube".into(), torus));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sensitivity of the Floyd-Warshall ranking (16 procs), normalized to full-map:"
    );
    let mut t = AsciiTable::new(&["configuration", "fm cycles", "Dir4Tree2", "Dir1NB"]);
    for (i, (name, config)) in rows.iter().enumerate() {
        let cells = record_grid(
            runner,
            &format!("sensitivity-{i}"),
            w,
            &[16],
            &[ProtocolKind::FullMap, t4k, l1k],
            |_| *config,
        );
        let fm = cell(&cells, ProtocolKind::FullMap, 16).record.cycles as f64;
        t.row(&[
            name.clone(),
            format!("{fm:.0}"),
            format!("{:.3}", cell(&cells, t4k, 16).normalized),
            format!("{:.3}", cell(&cells, l1k, 16).normalized),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "The qualitative ranking (Dir4Tree2 ~ full-map << Dir1NB) should be\n\
         robust to these knobs; replacement pressure is the one regime where\n\
         Dir_iTree_k pays its silent-subtree-kill cost."
    );
    out
}

/// **Ablation E12** — Dir₄Tree₂ replacement policy: silent subtree kill
/// (the paper) vs. eager home notification.
pub fn ablation_replacement(runner: &Runner) -> String {
    let kind = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };
    // A cache-thrashing workload plus Floyd (the paper's high-sharing app).
    let workloads = [
        WorkloadKind::Storm {
            words: 4096,
            passes: 3,
        },
        WorkloadKind::Floyd {
            vertices: 32,
            seed: 1996,
        },
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation E12: Dir4Tree2 replacement policy (16 procs, small cache)"
    );
    let mut t = AsciiTable::new(&[
        "workload",
        "policy",
        "cycles",
        "msgs",
        "repl-invs",
        "read-miss lat",
    ]);
    for (wi, w) in workloads.into_iter().enumerate() {
        for silent in [true, false] {
            let configure = |nodes: u32| {
                let mut config = MachineConfig::paper_default(nodes);
                // A small cache makes replacements frequent.
                config.cache = CacheConfig {
                    lines: 256,
                    associativity: 256,
                };
                config.protocol.dir_tree_silent_replace = silent;
                config
            };
            let cells = record_grid(
                runner,
                &format!(
                    "ablation-replacement-{wi}-{}",
                    if silent { "silent" } else { "notify" }
                ),
                w,
                &[16],
                &[kind],
                configure,
            );
            let r = &cell(&cells, kind, 16).record;
            t.row(&[
                w.name(),
                if silent {
                    "silent (paper)"
                } else {
                    "notify home"
                }
                .into(),
                r.cycles.to_string(),
                r.critical_messages().to_string(),
                r.replacement_invalidations.to_string(),
                format!("{:.1}", r.read_miss_latency.mean()),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "The paper argues silent replacement is cheap because most replaced\n\
         blocks are leaves; the notify-home policy pays a message per eviction\n\
         to keep directory pointers precise."
    );
    out
}

/// **Ablation E13** — Dir₈Tree₂ invalidation pairing: even→odd root
/// forwarding (the paper) vs. the home sending every root its own
/// invalidation.
pub fn ablation_pairing(runner: &Runner) -> String {
    let kind = ProtocolKind::DirTree {
        pointers: 8,
        arity: 2,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation E13: Dir8Tree2 invalidation pairing (32 procs)"
    );
    let mut t = AsciiTable::new(&[
        "workload",
        "policy",
        "cycles",
        "msgs",
        "write-miss lat (mean)",
        "write-miss lat (max)",
        "hottest controller (busy cyc)",
    ]);
    for (wi, w) in [
        WorkloadKind::Sharing {
            blocks: 16,
            rounds: 40,
        },
        WorkloadKind::Floyd {
            vertices: 24,
            seed: 1996,
        },
    ]
    .into_iter()
    .enumerate()
    {
        for pairing in [true, false] {
            let configure = |nodes: u32| {
                let mut config = MachineConfig::paper_default(nodes);
                config.protocol.dir_tree_pairing = pairing;
                config
            };
            let cells = record_grid(
                runner,
                &format!(
                    "ablation-pairing-{wi}-{}",
                    if pairing { "paired" } else { "flat" }
                ),
                w,
                &[32],
                &[kind],
                configure,
            );
            let r = &cell(&cells, kind, 32).record;
            t.row(&[
                w.name(),
                if pairing {
                    "even->odd (paper)"
                } else {
                    "home sends all"
                }
                .into(),
                r.cycles.to_string(),
                r.critical_messages().to_string(),
                format!("{:.1}", r.write_miss_latency.mean()),
                r.write_miss_latency.max().to_string(),
                r.max_controller_busy.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Pairing halves the acknowledgements converging on the home module,\n\
         relieving the hot-spot the paper calls out in §3 (write miss)."
    );
    out
}

/// **Ablation (extension)** — invalidation vs. update writes for
/// Dir₄Tree₂.
pub fn ablation_update(runner: &Runner) -> String {
    let inval = ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    };
    let update = ProtocolKind::DirTreeUpdate {
        pointers: 4,
        arity: 2,
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension ablation: Dir4Tree2 invalidation vs. update writes (16 procs)"
    );
    let mut t = AsciiTable::new(&["workload", "protocol", "cycles", "msgs", "bytes"]);
    for (wi, w) in [
        // Producer/consumer: one writer, many prompt readers — update's home turf.
        WorkloadKind::Sharing {
            blocks: 8,
            rounds: 30,
        },
        // Migratory RMW: each processor writes in turn — invalidation's home turf.
        WorkloadKind::Migratory {
            blocks: 8,
            rounds: 32,
        },
        // A real app mix.
        WorkloadKind::Floyd {
            vertices: 24,
            seed: 1996,
        },
    ]
    .into_iter()
    .enumerate()
    {
        let cells = record_grid(
            runner,
            &format!("ablation-update-{wi}"),
            w,
            &[16],
            &[inval, update],
            MachineConfig::paper_default,
        );
        for kind in [inval, update] {
            let r = &cell(&cells, kind, 16).record;
            t.row(&[
                w.name(),
                kind.name(),
                r.cycles.to_string(),
                r.critical_messages().to_string(),
                r.bytes.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "Update writes keep consumers' copies warm (no refetch after a write)\n\
         but pay a full home transaction for every store and push data bytes\n\
         to all sharers; invalidation pays refetches instead."
    );
    out
}

/// **Ablation (extension)** — the `k` in Dir₄Tree_k: what wider
/// cache-block fan-out would buy.
pub fn ablation_arity(runner: &Runner) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Dir4Tree_k arity ablation (32 procs, Floyd 32v):");
    let mut t = AsciiTable::new(&[
        "arity k",
        "cycles",
        "norm vs k=2",
        "write-miss lat",
        "cache bits/line (n=32)",
    ]);
    let w = WorkloadKind::Floyd {
        vertices: 32,
        seed: 1996,
    };
    let kinds: Vec<ProtocolKind> = [2u32, 3, 4]
        .iter()
        .map(|&arity| ProtocolKind::DirTree { pointers: 4, arity })
        .collect();
    let cells = record_grid(
        runner,
        "ablation-arity",
        w,
        &[32],
        &kinds,
        MachineConfig::paper_default,
    );
    let base = cell(&cells, kinds[0], 32).record.cycles;
    for kind in kinds {
        let r = &cell(&cells, kind, 32).record;
        let bits = build_protocol(kind, ProtocolParams::default()).cache_bits_per_line(32);
        let arity = match kind {
            ProtocolKind::DirTree { arity, .. } => arity,
            _ => unreachable!(),
        };
        t.row(&[
            arity.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.cycles as f64 / base as f64),
            format!("{:.1}", r.write_miss_latency.mean()),
            bits.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "k = 2 is the paper's choice; wider arity flattens the invalidation\n\
         trees slightly at the cost of log n bits per extra child pointer."
    );
    out
}

// ---------------------------------------------------------------------
// Adaptive update/invalidate ablation (the `adaptive_ablation` binary)
// ---------------------------------------------------------------------

/// The machine sizes of the [`adaptive_ablation`] study.
pub const ADAPTIVE_SIZES: [u32; 3] = [16, 64, 256];

/// The write policies the adaptive study compares: static invalidation,
/// static update, and the per-block adaptive hybrid — all on the same
/// Dir₄Tree₂ directory organization.
pub const ADAPTIVE_PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::DirTree {
        pointers: 4,
        arity: 2,
    },
    ProtocolKind::DirTreeUpdate {
        pointers: 4,
        arity: 2,
    },
    ProtocolKind::DirTreeAdaptive {
        pointers: 4,
        arity: 2,
    },
];

/// The four canonical sharing-pattern workloads (see
/// `dirtree_workloads::apps::patterns`). Each is best served by a known
/// static policy, so the grid measures how close the adaptive protocol
/// gets to an oracle that picks the right policy per block.
pub fn adaptive_workloads() -> [WorkloadKind; 4] {
    [
        WorkloadKind::PcPipeline {
            buffers: 16,
            rounds: 60,
        },
        WorkloadKind::TokenRing { tokens: 4, laps: 2 },
        WorkloadKind::Broadcast {
            blocks: 8,
            rounds: 120,
            scans: 2,
        },
        WorkloadKind::FalseShare {
            blocks: 8,
            rounds: 24,
        },
    ]
}

/// One cell of the adaptive ablation grid.
#[derive(Clone, Debug)]
pub struct AdaptiveCell {
    pub workload: WorkloadKind,
    pub protocol: ProtocolKind,
    pub nodes: u32,
    pub record: RunRecord,
}

/// Run the adaptive ablation grid: every pattern workload × write policy
/// × machine size, optionally restricted by a `--filter` substring over
/// `P=<nodes>` (grammar matches [`scale_up_cells`]). One spec named
/// `adaptive_ablation`, so the runner writes a single byte-deterministic
/// `adaptive_ablation.jsonl` the CI golden compares against.
pub fn adaptive_ablation_cells(
    runner: &Runner,
    filter: Option<&str>,
) -> (Vec<u32>, Vec<AdaptiveCell>) {
    let sizes = scale_up_sizes(&ADAPTIVE_SIZES, filter);
    if sizes.is_empty() {
        return (sizes, Vec::new());
    }
    let mut spec = SweepSpec::new("adaptive_ablation");
    for &w in &adaptive_workloads() {
        for &nodes in &sizes {
            for &protocol in &ADAPTIVE_PROTOCOLS {
                spec.push(SweepConfig::new(
                    MachineConfig::paper_default(nodes),
                    protocol,
                    w,
                ));
            }
        }
    }
    let outcome = runner.run(&spec);
    assert!(
        outcome.failures.is_empty(),
        "adaptive_ablation simulations failed: {:?}",
        outcome
            .failures
            .iter()
            .map(|f| f.message.as_str())
            .collect::<Vec<_>>()
    );
    // No failures, so records line up with the spec push order above.
    let mut records = outcome.records.into_iter();
    let mut cells = Vec::new();
    for &workload in &adaptive_workloads() {
        for &nodes in &sizes {
            for &protocol in &ADAPTIVE_PROTOCOLS {
                cells.push(AdaptiveCell {
                    workload,
                    protocol,
                    nodes,
                    record: records.next().expect("one record per config"),
                });
            }
        }
    }
    (sizes, cells)
}

/// Per-workload verdict: each policy's cycles summed over the machine
/// sizes that ran, and how the adaptive protocol compares to the statics.
#[derive(Clone, Debug)]
pub struct AdaptiveVerdict {
    pub workload: WorkloadKind,
    pub invalidate_cycles: u64,
    pub update_cycles: u64,
    pub adaptive_cycles: u64,
}

impl AdaptiveVerdict {
    pub fn best_static(&self) -> u64 {
        self.invalidate_cycles.min(self.update_cycles)
    }

    pub fn worst_static(&self) -> u64 {
        self.invalidate_cycles.max(self.update_cycles)
    }

    /// Adaptive cycles relative to the better static policy (1.0 = ties
    /// the oracle; the acceptance bar is ≤ 1.05).
    pub fn vs_best_static(&self) -> f64 {
        self.adaptive_cycles as f64 / self.best_static().max(1) as f64
    }

    pub fn beats_worst_static(&self) -> bool {
        self.adaptive_cycles < self.worst_static()
    }
}

/// Fold the grid into one [`AdaptiveVerdict`] per workload.
pub fn adaptive_verdicts(cells: &[AdaptiveCell]) -> Vec<AdaptiveVerdict> {
    let [inv, upd, adp] = ADAPTIVE_PROTOCOLS;
    let mut verdicts: Vec<AdaptiveVerdict> = Vec::new();
    for c in cells {
        if verdicts.last().map(|v| v.workload) != Some(c.workload) {
            verdicts.push(AdaptiveVerdict {
                workload: c.workload,
                invalidate_cycles: 0,
                update_cycles: 0,
                adaptive_cycles: 0,
            });
        }
        let v = verdicts.last_mut().expect("pushed above");
        match c.protocol {
            p if p == inv => v.invalidate_cycles += c.record.cycles,
            p if p == upd => v.update_cycles += c.record.cycles,
            p if p == adp => v.adaptive_cycles += c.record.cycles,
            p => panic!("unexpected protocol {} in adaptive grid", p.name()),
        }
    }
    verdicts
}

/// The acceptance bar for the adaptive protocol, asserted by the
/// `adaptive_ablation` binary: within 5% of the better static policy on
/// *every* pattern workload, and strictly cheaper than the worse static
/// policy on at least two of them.
pub fn assert_adaptive_criterion(verdicts: &[AdaptiveVerdict]) {
    for v in verdicts {
        assert!(
            v.vs_best_static() <= 1.05,
            "{}: adaptive {} cycles is {:.3}x the best static ({} inv / {} upd) — bar is 1.05x",
            v.workload.name(),
            v.adaptive_cycles,
            v.vs_best_static(),
            v.invalidate_cycles,
            v.update_cycles,
        );
    }
    let beats = verdicts.iter().filter(|v| v.beats_worst_static()).count();
    assert!(
        beats >= 2,
        "adaptive must strictly beat the worse static policy on >= 2 workloads, got {beats}"
    );
}

/// Render the adaptive ablation grid plus the per-workload verdicts.
pub fn adaptive_ablation_report(sizes: &[u32], cells: &[AdaptiveCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Adaptive update/invalidate ablation (Dir4Tree2 directory, \
         P in {sizes:?}):"
    );
    let mut t = AsciiTable::new(&[
        "workload",
        "procs",
        "protocol",
        "cycles",
        "msgs",
        "bytes",
        "flips→upd",
        "flips→inv",
    ]);
    for c in cells {
        let r = &c.record;
        t.row(&[
            c.workload.name(),
            c.nodes.to_string(),
            c.protocol.name(),
            r.cycles.to_string(),
            r.messages.to_string(),
            r.bytes.to_string(),
            r.mode_flips_to_update.to_string(),
            r.mode_flips_to_invalidate.to_string(),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    for v in adaptive_verdicts(cells) {
        let _ = writeln!(
            out,
            "  {:<22} inv={:<9} upd={:<9} adaptive={:<9} {:.3}x best static{}",
            v.workload.name(),
            v.invalidate_cycles,
            v.update_cycles,
            v.adaptive_cycles,
            v.vs_best_static(),
            if v.beats_worst_static() {
                ", beats worst"
            } else {
                ""
            },
        );
    }
    let _ = writeln!(
        out,
        "Per-block detection means mixed workloads need no global policy\n\
         choice: each block converges to the policy its own sharing pattern\n\
         wants (PatternSample / ModeFlip counters above)."
    );
    out
}

/// **Extension (ours)** — the adaptive write-policy study. Not in
/// [`registry`]; explicit opt-in via the `adaptive_ablation` binary
/// (CI runs the `--filter P=16` slice against a committed golden).
pub fn adaptive_ablation(runner: &Runner, filter: Option<&str>) -> String {
    let (sizes, cells) = adaptive_ablation_cells(runner, filter);
    assert!(
        !sizes.is_empty(),
        "--filter {:?} matches no adaptive-ablation size (P=16/64/256)",
        filter.unwrap_or_default()
    );
    adaptive_ablation_report(&sizes, &cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::SweepOptions;

    #[test]
    fn registry_matches_reproduce_all_set() {
        let names: Vec<&str> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 17);
        assert!(names.contains(&"table1") && names.contains(&"ablation_arity"));
        assert!(!names.contains(&"scaling"), "scaling is opt-in only");
        assert!(
            !names.contains(&"scale_up"),
            "scale_up is opt-in only (own binary + CI perf-smoke)"
        );
        assert!(
            !names.contains(&"adaptive_ablation"),
            "adaptive_ablation is opt-in only (own binary + CI golden slice)"
        );
    }

    #[test]
    fn scale_up_filter_selects_size_groups() {
        // Pure config-side check (no simulation): the filter grammar the
        // CI perf-smoke step relies on, over both grids.
        let base = |f: Option<&str>| scale_up_sizes(&SCALE_UP_SIZES, f);
        let vc = |f: Option<&str>| scale_up_sizes(&SCALE_UP_VC_SIZES, f);
        assert_eq!(base(None), vec![64, 128, 256]);
        assert_eq!(base(Some("P=64")), vec![64]);
        assert_eq!(base(Some("P=128")), vec![128]);
        assert_eq!(base(Some("P=256")), vec![256]);
        assert_eq!(base(Some("P=")), vec![64, 128, 256]);
        assert_eq!(vc(None), vec![64, 512, 1024]);
        assert_eq!(vc(Some("P=64")), vec![64]);
        assert_eq!(vc(Some("P=512")), vec![512]);
        assert_eq!(vc(Some("P=1024")), vec![1024]);
        // Sizes exclusive to the other grid select nothing here (the
        // binary only rejects a filter empty on *both* grids).
        assert!(base(Some("P=512")).is_empty());
        assert!(vc(Some("P=128")).is_empty());
    }

    #[test]
    fn vc_default_flips_only_the_network_mode() {
        let m = vc_default(512);
        assert_eq!(m.net.vcs, 3);
        assert!(m.net.adaptive);
        assert_eq!(m.net.vc_credits, 0);
        let base = MachineConfig::paper_default(512);
        assert_eq!(m.nodes, base.nodes);
        assert_eq!(m.mem_latency, base.mem_latency);
        assert_eq!(m.net.switch_delay, base.net.switch_delay);
    }

    #[test]
    fn vc_credited_adds_only_the_credit_bound() {
        let m = vc_credited(512);
        let vc = vc_default(512);
        assert_eq!(m.net.vc_credits, VC_CREDITS);
        assert_eq!(m.net.vcs, vc.net.vcs);
        assert_eq!(m.net.adaptive, vc.net.adaptive);
        assert_eq!(m.nodes, vc.nodes);
        assert_eq!(m.mem_latency, vc.mem_latency);
        assert_eq!(m.net.switch_delay, vc.net.switch_delay);
        // Distinct fingerprints, so the sweep cache and the golden files
        // can never confuse the credited and idealized grids.
        assert_ne!(m.fingerprint(), vc.fingerprint());
    }

    #[test]
    fn adaptive_filter_selects_size_groups() {
        let adp = |f: Option<&str>| scale_up_sizes(&ADAPTIVE_SIZES, f);
        assert_eq!(adp(None), vec![16, 64, 256]);
        assert_eq!(adp(Some("P=16")), vec![16]);
        assert_eq!(adp(Some("P=64")), vec![64]);
        assert_eq!(adp(Some("P=256")), vec![256]);
        assert!(adp(Some("P=512")).is_empty());
    }

    #[test]
    fn adaptive_verdicts_fold_and_judge() {
        let [inv, upd, adp] = ADAPTIVE_PROTOCOLS;
        let w = WorkloadKind::TokenRing { tokens: 4, laps: 2 };
        let mut cells = Vec::new();
        for (protocol, cycles) in [(inv, 100u64), (upd, 180), (adp, 103)] {
            for nodes in [16u32, 64] {
                let record = RunRecord {
                    cycles: cycles * nodes as u64,
                    ..RunRecord::default()
                };
                cells.push(AdaptiveCell {
                    workload: w,
                    protocol,
                    nodes,
                    record,
                });
            }
        }
        // adaptive_verdicts expects spec order (workload-major, then
        // size, then protocol); re-sort the synthetic cells to match.
        cells.sort_by_key(|c| {
            (
                c.nodes,
                ADAPTIVE_PROTOCOLS.iter().position(|&p| p == c.protocol),
            )
        });
        let verdicts = adaptive_verdicts(&cells);
        assert_eq!(verdicts.len(), 1);
        let v = &verdicts[0];
        assert_eq!(v.invalidate_cycles, 100 * 80);
        assert_eq!(v.update_cycles, 180 * 80);
        assert_eq!(v.adaptive_cycles, 103 * 80);
        assert_eq!(v.best_static(), 100 * 80);
        assert!(v.vs_best_static() > 1.02 && v.vs_best_static() < 1.04);
        assert!(v.beats_worst_static());
    }

    #[test]
    #[should_panic(expected = "bar is 1.05x")]
    fn adaptive_criterion_rejects_a_slow_adaptive() {
        let w = WorkloadKind::Broadcast {
            blocks: 8,
            rounds: 10,
            scans: 2,
        };
        assert_adaptive_criterion(&[AdaptiveVerdict {
            workload: w,
            invalidate_cycles: 100,
            update_cycles: 90,
            adaptive_cycles: 120,
        }]);
    }

    #[test]
    fn analytic_experiments_render() {
        assert!(table3().contains("N1(j)"));
        assert!(table4().contains("Table 4"));
        assert!(tree_shapes().contains("Figure 7"));
        assert!(memory_overhead().contains("FullMap"));
    }

    #[test]
    fn sweep_experiment_plumbing_works_on_a_tiny_grid() {
        let dir =
            std::env::temp_dir().join(format!("dirtree-experiments-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runner = Runner::new(SweepOptions {
            jobs: 2,
            out_dir: dir.clone(),
            ..SweepOptions::default()
        });
        let t4 = ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        };
        let cells = record_grid(
            &runner,
            "tiny",
            WorkloadKind::Floyd {
                vertices: 8,
                seed: 1996,
            },
            &[4],
            &[ProtocolKind::FullMap, t4],
            MachineConfig::test_default,
        );
        assert_eq!(cells.len(), 2);
        assert!((cell(&cells, ProtocolKind::FullMap, 4).normalized - 1.0).abs() < 1e-12);
        assert!(cell(&cells, t4, 4).normalized > 0.0);
        assert!(runner.failures().is_empty());
        assert!(dir.join("tiny.jsonl").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
