//! Sweep specification and the structured run records it produces.
//!
//! A [`SweepSpec`] enumerates experiment configurations (protocol ×
//! workload × machine size × seed × network parameters). The runner
//! (`runner.rs`) executes each config's `Machine` simulation in-process
//! and produces one [`RunRecord`] per config — a flat, deterministic
//! snapshot of the outcome that serializes to one JSON line (hand-rolled;
//! the build environment has no serde) and round-trips through the
//! on-disk result cache.
//!
//! Determinism contract: a config's canonical [`SweepConfig::key`] fixes
//! every semantic input of the simulation. The per-config RNG salt is
//! *derived* from that key (`derived_seed`, via the simulator's FxHash),
//! never from worker/thread state, so records are bit-identical regardless
//! of how many jobs the runner uses.

use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{MachineConfig, RunOutcome, TopologyKind};
use dirtree_net::Fabric;
use dirtree_sim::hash::FxHasher;
use dirtree_sim::metrics::{ClassCounts, MetricsSnapshot, MsgClass};
use dirtree_sim::Histogram;
use dirtree_workloads::WorkloadKind;
use std::fmt::Write as _;
use std::hash::Hasher;

/// One experiment configuration: a workload on a protocol on a machine.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    pub machine: MachineConfig,
    pub protocol: ProtocolKind,
    pub workload: WorkloadKind,
    /// Sweep-level replication index. 0 reproduces the published inputs;
    /// non-zero values perturb RNG-consuming workloads via a salt hashed
    /// from the config key (see [`WorkloadKind::with_seed`]).
    pub seed: u64,
}

impl SweepConfig {
    pub fn new(machine: MachineConfig, protocol: ProtocolKind, workload: WorkloadKind) -> Self {
        Self {
            machine,
            protocol,
            workload,
            seed: 0,
        }
    }

    /// Canonical single-line key spelling out every semantic field of the
    /// configuration. This is the cache identity: two configs with equal
    /// keys must simulate identically.
    pub fn key(&self) -> String {
        let m = &self.machine;
        let net = &m.net;
        let fabric = match net.fabric {
            Fabric::KaryNcube => "cube",
            Fabric::Bus => "bus",
        };
        let topo = match m.topology {
            TopologyKind::Hypercube => "hypercube".to_string(),
            TopologyKind::KaryNcube { radix } => format!("kary{radix}"),
        };
        let mut key = String::with_capacity(192);
        let _ = write!(
            key,
            "v1|proto={}|wl={}|nodes={}|cache={}/{}|blk={}|hdr={}|mem={}|cl={}|\
             net={fabric}{{sw={},w={},cont={},loc={}}}|topo={topo}|\
             pp={{trap={},pair={},silent={}}}|sync={}|seed={}",
            self.protocol.name(),
            workload_key(&self.workload),
            m.nodes,
            m.cache.lines,
            m.cache.associativity,
            m.block_bytes,
            m.header_bytes,
            m.mem_latency,
            m.cache_latency,
            net.switch_delay,
            net.link_width_bits,
            net.contention as u8,
            net.local_delay,
            m.protocol.sw_trap_cycles,
            m.protocol.dir_tree_pairing as u8,
            m.protocol.dir_tree_silent_replace as u8,
            m.sync_latency,
            self.seed,
        );
        // Virtual-channel parameters extend the key only when non-default,
        // so every pre-VC cache entry and golden file keeps its identity.
        if net.vc_nondefault() {
            let _ = write!(
                key,
                "|vc={{n={},ad={},cr={}}}",
                net.vc_count(),
                net.adaptive as u8,
                net.vc_credits,
            );
        }
        // Same idiom for the adaptive-protocol thresholds: the segment
        // appears only when they differ from the defaults.
        if m.protocol.adapt_nondefault() {
            let _ = write!(
                key,
                "|ap={{up={},down={},sat={}}}",
                m.protocol.adapt_flip_up, m.protocol.adapt_flip_down, m.protocol.adapt_saturation,
            );
        }
        key
    }

    /// Content hash of the canonical key (FxHash, `crates/sim/src/hash.rs`).
    pub fn config_hash(&self) -> u64 {
        hash_str(&self.key())
    }

    /// The workload RNG salt for this config: 0 for seed 0 (published
    /// inputs), otherwise hashed from the full config key so it depends
    /// only on the config — never on worker scheduling.
    pub fn derived_seed(&self) -> u64 {
        if self.seed == 0 {
            0
        } else {
            self.config_hash()
        }
    }

    /// The workload actually simulated (seed salt applied).
    pub fn effective_workload(&self) -> WorkloadKind {
        self.workload.with_seed(self.derived_seed())
    }
}

/// Canonical workload key including *all* parameters (unlike
/// `WorkloadKind::name`, which elides seeds for display).
pub fn workload_key(w: &WorkloadKind) -> String {
    match *w {
        WorkloadKind::Mp3d { particles, steps } => format!("mp3d{{p={particles},s={steps}}}"),
        WorkloadKind::Lu { n } => format!("lu{{n={n}}}"),
        WorkloadKind::LuBlocked { n, block } => format!("lub{{n={n},b={block}}}"),
        WorkloadKind::Floyd { vertices, seed } => format!("floyd{{v={vertices},seed={seed}}}"),
        WorkloadKind::Fft { points } => format!("fft{{n={points}}}"),
        WorkloadKind::Jacobi { grid, sweeps } => format!("jacobi{{g={grid},s={sweeps}}}"),
        WorkloadKind::Sharing { blocks, rounds } => format!("sharing{{b={blocks},r={rounds}}}"),
        WorkloadKind::Migratory { blocks, rounds } => format!("migratory{{b={blocks},r={rounds}}}"),
        WorkloadKind::Storm { words, passes } => format!("storm{{w={words},p={passes}}}"),
        WorkloadKind::PcPipeline { buffers, rounds } => {
            format!("pcpipe{{b={buffers},r={rounds}}}")
        }
        WorkloadKind::TokenRing { tokens, laps } => format!("tokenring{{t={tokens},l={laps}}}"),
        WorkloadKind::Broadcast {
            blocks,
            rounds,
            scans,
        } => format!("broadcast{{b={blocks},r={rounds},s={scans}}}"),
        WorkloadKind::FalseShare { blocks, rounds } => {
            format!("falseshare{{b={blocks},r={rounds}}}")
        }
    }
}

/// FxHash of a string.
pub fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// A named collection of configs to run.
#[derive(Clone, Debug, Default)]
pub struct SweepSpec {
    /// Used for the JSONL output filename under the sweep directory.
    pub name: String,
    pub configs: Vec<SweepConfig>,
}

impl SweepSpec {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            configs: Vec::new(),
        }
    }

    pub fn push(&mut self, config: SweepConfig) {
        self.configs.push(config);
    }

    /// Grid helper: every (protocol, node count) pair for one workload.
    pub fn grid(
        name: impl Into<String>,
        workload: WorkloadKind,
        node_counts: &[u32],
        protocols: &[ProtocolKind],
        configure: impl Fn(u32) -> MachineConfig,
    ) -> Self {
        let mut spec = Self::new(name);
        for &nodes in node_counts {
            for &protocol in protocols {
                spec.push(SweepConfig::new(configure(nodes), protocol, workload));
            }
        }
        spec
    }
}

/// The deterministic, serializable outcome of one config's simulation.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    pub key: String,
    pub config_hash: u64,
    pub protocol: String,
    pub workload: String,
    pub nodes: u32,
    pub seed: u64,
    pub cycles: u64,
    pub reads: u64,
    pub writes: u64,
    pub read_hits: u64,
    pub write_hits: u64,
    pub read_misses: u64,
    pub write_misses: u64,
    pub messages: u64,
    pub fill_acks: u64,
    pub bytes: u64,
    pub invalidations: u64,
    pub replacement_invalidations: u64,
    pub software_traps: u64,
    pub broadcasts: u64,
    pub tree_merges: u64,
    pub tree_push_downs: u64,
    pub evictions: u64,
    pub barriers: u64,
    pub lock_acquires: u64,
    pub max_controller_busy: u64,
    /// Simulation events delivered (throughput denominator for the
    /// hot-path benchmarks; deterministic).
    pub events: u64,
    /// Event-queue high-water mark (deterministic schedule property).
    pub peak_queue_depth: u64,
    /// Adaptive-protocol pattern samples and mode flips. All zero for
    /// static protocols, and serialized only when non-zero, so every
    /// pre-adaptive record and golden file keeps its exact bytes.
    pub pattern_producer_consumer: u64,
    pub pattern_read_mostly: u64,
    pub pattern_migratory: u64,
    pub pattern_write_shared: u64,
    pub pattern_private: u64,
    pub mode_flips_to_update: u64,
    pub mode_flips_to_invalidate: u64,
    pub net_messages: u64,
    pub net_bytes: u64,
    pub net_hops: u64,
    /// Virtual channels simulated (1 = the classic single-channel model;
    /// the VC fields below serialize only when this exceeds 1, keeping
    /// legacy records byte-stable).
    pub net_vcs: u32,
    /// Cycles spent waiting for the injection port (plus all bus
    /// arbitration, which has no per-hop links to attribute to).
    pub net_inject_wait_cycles: u64,
    /// Cycles spent waiting for transit links along routes.
    pub net_link_wait_cycles: u64,
    /// Per-virtual-channel share of the wait above (empty when
    /// single-channel).
    pub net_vc_wait_cycles: Vec<u64>,
    pub read_miss_latency: Histogram,
    pub write_miss_latency: Histogram,
    pub sharers_at_write: Histogram,
    /// Observability export: per-class message counts, transaction latency,
    /// wave geometry, link utilization (all-zero when the machine was
    /// built without the `trace` feature; this crate enables it).
    pub metrics: MetricsSnapshot,
}

impl RunRecord {
    /// Snapshot a machine run into a record.
    pub fn from_outcome(config: &SweepConfig, outcome: &RunOutcome) -> Self {
        let s = &outcome.stats;
        let n = &outcome.net;
        Self {
            key: config.key(),
            config_hash: config.config_hash(),
            protocol: config.protocol.name(),
            workload: config.workload.name(),
            nodes: config.machine.nodes,
            seed: config.seed,
            cycles: outcome.cycles,
            reads: s.reads,
            writes: s.writes,
            read_hits: s.read_hits,
            write_hits: s.write_hits,
            read_misses: s.read_misses,
            write_misses: s.write_misses,
            messages: s.messages,
            fill_acks: s.fill_acks,
            bytes: s.bytes,
            invalidations: s.invalidations,
            replacement_invalidations: s.replacement_invalidations,
            software_traps: s.software_traps,
            broadcasts: s.broadcasts,
            tree_merges: s.tree_merges,
            tree_push_downs: s.tree_push_downs,
            evictions: s.evictions,
            barriers: s.barriers,
            lock_acquires: s.lock_acquires,
            max_controller_busy: s.max_controller_busy,
            events: s.events,
            peak_queue_depth: s.peak_queue_depth,
            pattern_producer_consumer: s.pattern_producer_consumer,
            pattern_read_mostly: s.pattern_read_mostly,
            pattern_migratory: s.pattern_migratory,
            pattern_write_shared: s.pattern_write_shared,
            pattern_private: s.pattern_private,
            mode_flips_to_update: s.mode_flips_to_update,
            mode_flips_to_invalidate: s.mode_flips_to_invalidate,
            net_messages: n.messages,
            net_bytes: n.bytes,
            net_hops: n.total_hops,
            net_vcs: config.machine.net.vc_count(),
            net_inject_wait_cycles: n.inject_wait_cycles,
            net_link_wait_cycles: n.link_wait_cycles,
            net_vc_wait_cycles: n.vc_wait_cycles.clone(),
            read_miss_latency: s.read_miss_latency.clone(),
            write_miss_latency: s.write_miss_latency.clone(),
            sharers_at_write: s.sharers_at_write.clone(),
            metrics: outcome.metrics.clone(),
        }
    }

    /// Critical-path messages (fill acknowledgements excluded, as in the
    /// paper's Table 1).
    pub fn critical_messages(&self) -> u64 {
        self.messages - self.fill_acks
    }

    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Aggregate network wait (the pre-split `net_contention_cycles`
    /// scalar; still serialized under that name for record compatibility).
    pub fn net_contention_cycles(&self) -> u64 {
        self.net_inject_wait_cycles + self.net_link_wait_cycles
    }

    /// Serialize to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(640);
        out.push('{');
        json_str(&mut out, "key", &self.key);
        json_u64(&mut out, "config_hash", self.config_hash);
        json_str(&mut out, "protocol", &self.protocol);
        json_str(&mut out, "workload", &self.workload);
        json_u64(&mut out, "nodes", self.nodes as u64);
        json_u64(&mut out, "seed", self.seed);
        json_u64(&mut out, "cycles", self.cycles);
        json_u64(&mut out, "reads", self.reads);
        json_u64(&mut out, "writes", self.writes);
        json_u64(&mut out, "read_hits", self.read_hits);
        json_u64(&mut out, "write_hits", self.write_hits);
        json_u64(&mut out, "read_misses", self.read_misses);
        json_u64(&mut out, "write_misses", self.write_misses);
        json_u64(&mut out, "messages", self.messages);
        json_u64(&mut out, "fill_acks", self.fill_acks);
        json_u64(&mut out, "bytes", self.bytes);
        json_u64(&mut out, "invalidations", self.invalidations);
        json_u64(
            &mut out,
            "replacement_invalidations",
            self.replacement_invalidations,
        );
        json_u64(&mut out, "software_traps", self.software_traps);
        json_u64(&mut out, "broadcasts", self.broadcasts);
        json_u64(&mut out, "tree_merges", self.tree_merges);
        json_u64(&mut out, "tree_push_downs", self.tree_push_downs);
        json_u64(&mut out, "evictions", self.evictions);
        json_u64(&mut out, "barriers", self.barriers);
        json_u64(&mut out, "lock_acquires", self.lock_acquires);
        json_u64(&mut out, "max_controller_busy", self.max_controller_busy);
        json_u64(&mut out, "events", self.events);
        json_u64(&mut out, "peak_queue_depth", self.peak_queue_depth);
        for (name, v) in [
            ("pattern_producer_consumer", self.pattern_producer_consumer),
            ("pattern_read_mostly", self.pattern_read_mostly),
            ("pattern_migratory", self.pattern_migratory),
            ("pattern_write_shared", self.pattern_write_shared),
            ("pattern_private", self.pattern_private),
            ("mode_flips_to_update", self.mode_flips_to_update),
            ("mode_flips_to_invalidate", self.mode_flips_to_invalidate),
        ] {
            if v > 0 {
                json_u64(&mut out, name, v);
            }
        }
        json_u64(&mut out, "net_messages", self.net_messages);
        json_u64(&mut out, "net_bytes", self.net_bytes);
        json_u64(&mut out, "net_hops", self.net_hops);
        json_u64(
            &mut out,
            "net_contention_cycles",
            self.net_contention_cycles(),
        );
        if self.net_vcs > 1 {
            json_u64(&mut out, "net_vcs", self.net_vcs as u64);
            json_u64(
                &mut out,
                "net_inject_wait_cycles",
                self.net_inject_wait_cycles,
            );
            json_u64(&mut out, "net_link_wait_cycles", self.net_link_wait_cycles);
            out.push_str("\"net_vc_wait_cycles\":[");
            for (i, w) in self.net_vc_wait_cycles.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{w}");
            }
            out.push_str("],");
        }
        json_hist(&mut out, "read_miss_latency", &self.read_miss_latency);
        json_hist(&mut out, "write_miss_latency", &self.write_miss_latency);
        json_hist(&mut out, "sharers_at_write", &self.sharers_at_write);
        json_metrics(&mut out, "metrics", &self.metrics);
        // Remove the trailing comma the field helpers append.
        out.pop();
        out.push('}');
        out
    }

    /// Parse a record previously produced by [`Self::to_json`].
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = json::parse(line)?;
        let obj = v.as_object().ok_or("record is not a JSON object")?;
        let get = |name: &str| -> Result<&json::Value, String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name}"))
        };
        let get_u64 = |name: &str| -> Result<u64, String> {
            get(name)?
                .as_u64()
                .ok_or_else(|| format!("field {name} is not a u64"))
        };
        let opt_u64 = |name: &str| -> Option<u64> { get(name).ok().and_then(json::Value::as_u64) };
        let get_str = |name: &str| -> Result<String, String> {
            Ok(get(name)?
                .as_str()
                .ok_or_else(|| format!("field {name} is not a string"))?
                .to_string())
        };
        let get_hist = |name: &str| -> Result<Histogram, String> { parse_hist(get(name)?) };
        Ok(Self {
            key: get_str("key")?,
            config_hash: get_u64("config_hash")?,
            protocol: get_str("protocol")?,
            workload: get_str("workload")?,
            nodes: get_u64("nodes")? as u32,
            seed: get_u64("seed")?,
            cycles: get_u64("cycles")?,
            reads: get_u64("reads")?,
            writes: get_u64("writes")?,
            read_hits: get_u64("read_hits")?,
            write_hits: get_u64("write_hits")?,
            read_misses: get_u64("read_misses")?,
            write_misses: get_u64("write_misses")?,
            messages: get_u64("messages")?,
            fill_acks: get_u64("fill_acks")?,
            bytes: get_u64("bytes")?,
            invalidations: get_u64("invalidations")?,
            replacement_invalidations: get_u64("replacement_invalidations")?,
            software_traps: get_u64("software_traps")?,
            broadcasts: get_u64("broadcasts")?,
            tree_merges: get_u64("tree_merges")?,
            tree_push_downs: get_u64("tree_push_downs")?,
            evictions: get_u64("evictions")?,
            barriers: get_u64("barriers")?,
            lock_acquires: get_u64("lock_acquires")?,
            max_controller_busy: get_u64("max_controller_busy")?,
            events: get_u64("events")?,
            peak_queue_depth: get_u64("peak_queue_depth")?,
            pattern_producer_consumer: opt_u64("pattern_producer_consumer").unwrap_or(0),
            pattern_read_mostly: opt_u64("pattern_read_mostly").unwrap_or(0),
            pattern_migratory: opt_u64("pattern_migratory").unwrap_or(0),
            pattern_write_shared: opt_u64("pattern_write_shared").unwrap_or(0),
            pattern_private: opt_u64("pattern_private").unwrap_or(0),
            mode_flips_to_update: opt_u64("mode_flips_to_update").unwrap_or(0),
            mode_flips_to_invalidate: opt_u64("mode_flips_to_invalidate").unwrap_or(0),
            net_messages: get_u64("net_messages")?,
            net_bytes: get_u64("net_bytes")?,
            net_hops: get_u64("net_hops")?,
            // VC fields are absent from legacy (single-channel) records:
            // the split is unrecoverable there, so the whole aggregate is
            // attributed to injection and the serialized sum round-trips.
            net_vcs: opt_u64("net_vcs").unwrap_or(1) as u32,
            net_inject_wait_cycles: opt_u64("net_inject_wait_cycles")
                .unwrap_or(get_u64("net_contention_cycles")?),
            net_link_wait_cycles: opt_u64("net_link_wait_cycles").unwrap_or(0),
            net_vc_wait_cycles: match get("net_vc_wait_cycles") {
                Ok(v) => v
                    .as_array()
                    .ok_or("net_vc_wait_cycles is not an array")?
                    .iter()
                    .map(|w| w.as_u64().ok_or("net_vc_wait_cycles entry is not a u64"))
                    .collect::<Result<_, _>>()?,
                Err(_) => Vec::new(),
            },
            read_miss_latency: get_hist("read_miss_latency")?,
            write_miss_latency: get_hist("write_miss_latency")?,
            sharers_at_write: get_hist("sharers_at_write")?,
            metrics: parse_metrics(get("metrics")?)?,
        })
    }
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_str(out: &mut String, name: &str, value: &str) {
    let _ = write!(out, "\"{name}\":\"");
    json_escape(out, value);
    out.push_str("\",");
}

fn json_u64(out: &mut String, name: &str, value: u64) {
    let _ = write!(out, "\"{name}\":{value},");
}

/// Histograms serialize as exact moments plus the sparse non-zero log₂
/// buckets: `{"count":..,"sum":..,"min":..,"max":..,"buckets":[[b,n],..]}`.
fn json_hist(out: &mut String, name: &str, h: &Histogram) {
    let _ = write!(out, "\"{name}\":");
    json_hist_value(out, h);
    out.push(',');
}

/// The histogram object alone (for array elements).
fn json_hist_value(out: &mut String, h: &Histogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count(),
        h.sum(),
        h.min(),
        h.max()
    );
    let mut first = true;
    for (b, &n) in h.buckets().iter().enumerate() {
        if n > 0 {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "[{b},{n}]");
            first = false;
        }
    }
    out.push_str("]}");
}

/// The metrics snapshot serializes as a nested object (see EXPERIMENTS.md
/// for the schema): sparse per-class entries `["label",count,bytes,to_dir]`
/// in enum order, four histograms, link-utilization scalars, queue-depth
/// histograms, and the busiest blocks as `[addr,messages]` pairs. All
/// values are integers, so the encoding is exact and byte-stable.
fn json_metrics(out: &mut String, name: &str, m: &MetricsSnapshot) {
    let _ = write!(out, "\"{name}\":{{\"classes\":[");
    let mut first = true;
    for class in MsgClass::ALL {
        let c = m.class(class);
        if c.count > 0 {
            if !first {
                out.push(',');
            }
            let _ = write!(
                out,
                "[\"{}\",{},{},{}]",
                class.label(),
                c.count,
                c.bytes,
                c.to_dir
            );
            first = false;
        }
    }
    out.push_str("],");
    json_hist(out, "read_tx_latency", &m.read_tx_latency);
    json_hist(out, "write_tx_latency", &m.write_tx_latency);
    json_hist(out, "inv_wave_depth", &m.inv_wave_depth);
    json_hist(out, "inv_wave_acks", &m.inv_wave_acks);
    json_u64(out, "links", m.links);
    json_u64(out, "max_link_busy", m.max_link_busy);
    json_u64(out, "total_link_busy", m.total_link_busy);
    json_hist(out, "inject_queue", &m.inject_queue);
    json_hist(out, "link_queue", &m.link_queue);
    // Per-VC queue-depth histograms exist only on multi-channel runs;
    // omitting the field keeps single-channel records byte-stable.
    if !m.vc_queue.is_empty() {
        out.push_str("\"vc_queue\":[");
        for (i, h) in m.vc_queue.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_hist_value(out, h);
        }
        out.push_str("],");
    }
    out.push_str("\"top_blocks\":[");
    for (i, (addr, msgs)) in m.top_blocks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{addr},{msgs}]");
    }
    out.push_str("]},");
}

fn parse_metrics(v: &json::Value) -> Result<MetricsSnapshot, String> {
    let obj = v.as_object().ok_or("metrics is not an object")?;
    let get = |name: &str| -> Result<&json::Value, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("metrics field {name} missing"))
    };
    let mut m = MetricsSnapshot::default();
    for entry in get("classes")?
        .as_array()
        .ok_or("classes is not an array")?
    {
        let e = entry.as_array().ok_or("class entry is not an array")?;
        let label = e
            .first()
            .and_then(json::Value::as_str)
            .ok_or("class entry has no label")?;
        let class = MsgClass::from_label(label)
            .ok_or_else(|| format!("unknown message class {label:?}"))?;
        let num = |i: usize| -> Result<u64, String> {
            e.get(i)
                .and_then(json::Value::as_u64)
                .ok_or_else(|| format!("class {label} entry [{i}] is not a u64"))
        };
        m.classes[class.index()] = ClassCounts {
            count: num(1)?,
            bytes: num(2)?,
            to_dir: num(3)?,
        };
    }
    m.read_tx_latency = parse_hist(get("read_tx_latency")?)?;
    m.write_tx_latency = parse_hist(get("write_tx_latency")?)?;
    m.inv_wave_depth = parse_hist(get("inv_wave_depth")?)?;
    m.inv_wave_acks = parse_hist(get("inv_wave_acks")?)?;
    let scalar = |name: &str| -> Result<u64, String> {
        get(name)?
            .as_u64()
            .ok_or_else(|| format!("metrics field {name} is not a u64"))
    };
    m.links = scalar("links")?;
    m.max_link_busy = scalar("max_link_busy")?;
    m.total_link_busy = scalar("total_link_busy")?;
    m.inject_queue = parse_hist(get("inject_queue")?)?;
    m.link_queue = parse_hist(get("link_queue")?)?;
    if let Ok(v) = get("vc_queue") {
        for h in v.as_array().ok_or("vc_queue is not an array")? {
            m.vc_queue.push(parse_hist(h)?);
        }
    }
    for pair in get("top_blocks")?
        .as_array()
        .ok_or("top_blocks is not an array")?
    {
        let pair = pair.as_array().ok_or("top_blocks entry is not an array")?;
        match (
            pair.first().and_then(json::Value::as_u64),
            pair.get(1).and_then(json::Value::as_u64),
        ) {
            (Some(addr), Some(msgs)) => m.top_blocks.push((addr, msgs)),
            _ => return Err("top_blocks entry is not [addr, messages]".into()),
        }
    }
    Ok(m)
}

fn parse_hist(v: &json::Value) -> Result<Histogram, String> {
    let obj = v.as_object().ok_or("histogram is not an object")?;
    let field = |name: &str| -> Result<u64, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_u64())
            .ok_or_else(|| format!("histogram field {name} missing or not a u64"))
    };
    let mut buckets = [0u64; 65];
    let pairs = obj
        .iter()
        .find(|(k, _)| k == "buckets")
        .and_then(|(_, v)| v.as_array())
        .ok_or("histogram buckets missing")?;
    for pair in pairs {
        let pair = pair.as_array().ok_or("bucket entry is not an array")?;
        let (b, n) = match (
            pair.first().and_then(json::Value::as_u64),
            pair.get(1).and_then(json::Value::as_u64),
        ) {
            (Some(b), Some(n)) => (b as usize, n),
            _ => return Err("bucket entry is not [index, count]".into()),
        };
        if b >= 65 {
            return Err(format!("bucket index {b} out of range"));
        }
        buckets[b] = n;
    }
    Ok(Histogram::from_parts(
        buckets,
        field("count")?,
        field("sum")?,
        field("min")?,
        field("max")?,
    ))
}

/// Minimal JSON parser — just enough for the records this module writes.
pub mod json {
    /// A parsed JSON value. Numbers keep their lexical form split into
    /// unsigned integers (the only numeric type the records use) and a
    /// float fallback.
    #[derive(Clone, Debug)]
    pub enum Value {
        Null,
        Bool(bool),
        U64(u64),
        F64(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::U64(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(v) => Some(v),
                _ => None,
            }
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let name = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((name, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                            *pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        }
                        _ => return Err(format!("bad escape \\{}", esc as char)),
                    }
                }
                c => {
                    // Re-decode multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = *pos - 1;
                        let len = match c {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let slice = b
                            .get(start..start + len)
                            .ok_or("truncated UTF-8 sequence")?;
                        out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                        *pos = start + len;
                    }
                }
            }
        }
        Err("unterminated string".into())
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected a number at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> SweepConfig {
        SweepConfig::new(
            MachineConfig::paper_default(8),
            ProtocolKind::DirTree {
                pointers: 4,
                arity: 2,
            },
            WorkloadKind::Floyd {
                vertices: 8,
                seed: 1996,
            },
        )
    }

    #[test]
    fn key_is_canonical_and_hash_is_stable() {
        let a = sample_config();
        let b = sample_config();
        assert_eq!(a.key(), b.key());
        assert_eq!(a.config_hash(), b.config_hash());
        let mut c = sample_config();
        c.machine.mem_latency = 6;
        assert_ne!(a.key(), c.key());
        assert_ne!(a.config_hash(), c.config_hash());
    }

    #[test]
    fn seed_zero_is_identity_nonzero_salts_floyd() {
        let base = sample_config();
        assert_eq!(base.effective_workload(), base.workload);
        let mut salted = sample_config();
        salted.seed = 3;
        assert_ne!(salted.effective_workload(), salted.workload);
        // And the salt only depends on the config, so it's reproducible.
        let mut again = sample_config();
        again.seed = 3;
        assert_eq!(salted.effective_workload(), again.effective_workload());
    }

    #[test]
    fn record_roundtrips_through_json() {
        use dirtree_machine::Machine;
        let config = sample_config();
        let mut machine = Machine::new(config.machine, config.protocol);
        let mut driver = config.effective_workload().build(config.machine.nodes);
        let outcome = machine.run(&mut driver);
        let record = RunRecord::from_outcome(&config, &outcome);
        let line = record.to_json();
        let parsed = RunRecord::from_json(&line).expect("parse");
        assert_eq!(parsed.to_json(), line, "roundtrip must be byte-identical");
        assert_eq!(parsed.cycles, record.cycles);
        assert_eq!(parsed.key, record.key);
        assert_eq!(
            parsed.write_miss_latency.mean(),
            record.write_miss_latency.mean()
        );
        assert_eq!(
            parsed.sharers_at_write.percentile(90.0),
            record.sharers_at_write.percentile(90.0)
        );
        // This crate builds the machine with the `trace` feature, so the
        // record's metrics are populated and agree with the message total.
        assert!(record.metrics.total_messages() > 0);
        assert_eq!(record.metrics.total_messages(), record.messages);
        assert!(line.contains("\"metrics\":{\"classes\":["));
        assert_eq!(
            parsed.metrics.total_messages(),
            record.metrics.total_messages()
        );
        assert_eq!(parsed.metrics.top_blocks, record.metrics.top_blocks);
        assert_eq!(
            parsed.metrics.inv_wave_depth.max(),
            record.metrics.inv_wave_depth.max()
        );
    }

    #[test]
    fn vc_key_segment_appears_only_when_nondefault() {
        let base = sample_config();
        assert!(!base.key().contains("|vc="));
        let mut explicit = sample_config();
        explicit.machine.net.vcs = 1; // == default
        assert_eq!(base.key(), explicit.key());
        let mut vc = sample_config();
        vc.machine.net.vcs = 3;
        vc.machine.net.adaptive = true;
        assert!(vc.key().ends_with("|vc={n=3,ad=1,cr=0}"), "{}", vc.key());
        assert_ne!(base.config_hash(), vc.config_hash());
    }

    #[test]
    fn vc_record_roundtrips_with_split_wait_and_per_vc_metrics() {
        use dirtree_machine::Machine;
        let mut config = sample_config();
        config.machine.net.vcs = 3;
        config.machine.net.adaptive = true;
        let mut machine = Machine::new(config.machine, config.protocol);
        let mut driver = config.effective_workload().build(config.machine.nodes);
        let outcome = machine.run(&mut driver);
        let record = RunRecord::from_outcome(&config, &outcome);
        assert_eq!(record.net_vcs, 3);
        assert_eq!(record.net_vc_wait_cycles.len(), 3);
        assert_eq!(
            record.net_vc_wait_cycles.iter().sum::<u64>(),
            record.net_contention_cycles(),
            "per-VC waits must partition the aggregate"
        );
        let line = record.to_json();
        assert!(line.contains("\"net_vcs\":3"));
        assert!(line.contains("\"net_inject_wait_cycles\":"));
        assert!(line.contains("\"vc_queue\":["));
        let parsed = RunRecord::from_json(&line).expect("parse");
        assert_eq!(parsed.to_json(), line, "roundtrip must be byte-identical");
        assert_eq!(parsed.net_inject_wait_cycles, record.net_inject_wait_cycles);
        assert_eq!(parsed.net_link_wait_cycles, record.net_link_wait_cycles);
        assert_eq!(parsed.net_vc_wait_cycles, record.net_vc_wait_cycles);
        assert_eq!(parsed.metrics.vc_queue.len(), record.metrics.vc_queue.len());
    }

    #[test]
    fn legacy_single_channel_records_parse_without_vc_fields() {
        use dirtree_machine::Machine;
        let config = sample_config();
        let mut machine = Machine::new(config.machine, config.protocol);
        let mut driver = config.effective_workload().build(config.machine.nodes);
        let outcome = machine.run(&mut driver);
        let record = RunRecord::from_outcome(&config, &outcome);
        let line = record.to_json();
        // Single-channel records keep the exact legacy shape: the
        // aggregate scalar, no VC fields.
        assert!(line.contains("\"net_contention_cycles\":"));
        assert!(!line.contains("net_vcs"));
        assert!(!line.contains("vc_queue"));
        let parsed = RunRecord::from_json(&line).expect("parse");
        assert_eq!(parsed.net_vcs, 1);
        assert_eq!(
            parsed.net_contention_cycles(),
            record.net_contention_cycles(),
            "the sum must survive the split being unrecoverable"
        );
        assert_eq!(parsed.to_json(), line, "roundtrip must be byte-identical");
    }

    #[test]
    fn json_escapes_roundtrip() {
        let v = json::parse(r#"{"a":"x\"y\\z\nw","b":[1,2],"c":3.5,"d":true}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].1.as_str(), Some("x\"y\\z\nw"));
        assert_eq!(obj[1].1.as_array().unwrap().len(), 2);
    }

    #[test]
    fn grid_spec_enumerates_cells_in_order() {
        let spec = SweepSpec::grid(
            "demo",
            WorkloadKind::Lu { n: 8 },
            &[4, 8],
            &[ProtocolKind::FullMap, ProtocolKind::Sci],
            MachineConfig::paper_default,
        );
        assert_eq!(spec.configs.len(), 4);
        assert_eq!(spec.configs[0].machine.nodes, 4);
        assert_eq!(spec.configs[3].protocol, ProtocolKind::Sci);
    }
}
