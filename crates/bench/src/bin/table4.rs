//! **Table 4** — maximum number of nodes in the Dir₂Tree₂ / Dir₄Tree₂
//! forests as a function of tree level, against the balanced-binary-tree
//! reference (SCI tree extension / binary STP), compared cell-by-cell with
//! the paper's published integers.
//!
//! Run: `cargo run -p dirtree-bench --bin table4`

use dirtree_analysis::tables::AsciiTable;
use dirtree_analysis::tree_capacity::{binary_tree_nodes, max_nodes_at_level, PAPER_TABLE4};

fn main() {
    println!("Table 4: maximum nodes vs. tree level");
    let mut t = AsciiTable::new(&[
        "level",
        "Dir2Tree2",
        "paper",
        "Dir4Tree2",
        "paper",
        "binary tree",
        "paper",
    ]);
    let mut mismatches = 0;
    for (level, p2, p4, pb) in PAPER_TABLE4 {
        let d2 = max_nodes_at_level(2, level);
        let d4 = max_nodes_at_level(4, level);
        let b = binary_tree_nodes(level);
        for (ours, paper) in [(d2, p2), (d4, p4), (b, pb)] {
            if ours != paper {
                mismatches += 1;
            }
        }
        t.row(&[
            level.to_string(),
            d2.to_string(),
            p2.to_string(),
            d4.to_string(),
            p4.to_string(),
            b.to_string(),
            pb.to_string(),
        ]);
    }
    println!("{}", t.render());
    if mismatches == 0 {
        println!("All cells match the paper exactly.");
    } else {
        println!(
            "{mismatches} cells differ from the paper (see EXPERIMENTS.md for the \
             selection-rule discussion)."
        );
    }
    println!(
        "\nA 1024-node Dir4Tree2 forest: level {} (paper: 12, one more than the \
         balanced binary tree's 11).",
        (3..=20u32)
            .find(|&l| max_nodes_at_level(4, l) >= 1024)
            .unwrap()
    );
}
