//! **Table 4** — maximum number of nodes in the Dir₂Tree₂ / Dir₄Tree₂
//! forests as a function of tree level, against the balanced-binary-tree
//! reference (SCI tree extension / binary STP), compared cell-by-cell with
//! the paper's published integers.
//!
//! Run: `cargo run -p dirtree-bench --bin table4`

fn main() {
    print!("{}", dirtree_bench::experiments::table4());
}
