//! **Ablation (extension)** — the `k` in Dir₄Tree_k: the paper fixes
//! k = 2 ("we feel comfortable in using i = 4 and k = 2"); this measures
//! what wider cache-block fan-out would buy. With our k-way merge
//! generalization, wider trees are shallower (faster invalidation) at the
//! cost of k child pointers per cache line.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_arity`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::ablation_arity(&runner));
}
