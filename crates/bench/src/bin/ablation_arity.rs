//! **Ablation (extension)** — the `k` in Dir₄Tree_k: the paper fixes
//! k = 2 ("we feel comfortable in using i = 4 and k = 2"); this measures
//! what wider cache-block fan-out would buy. With our k-way merge
//! generalization, wider trees are shallower (faster invalidation) at the
//! cost of k child pointers per cache line.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_arity`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::{build_protocol, ProtocolKind, ProtocolParams};
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    println!("Dir4Tree_k arity ablation (32 procs, Floyd 32v):");
    let mut t = AsciiTable::new(&[
        "arity k",
        "cycles",
        "norm vs k=2",
        "write-miss lat",
        "cache bits/line (n=32)",
    ]);
    let w = WorkloadKind::Floyd { vertices: 32, seed: 1996 };
    let config = MachineConfig::paper_default(32);
    let base = run_workload(&config, ProtocolKind::DirTree { pointers: 4, arity: 2 }, w);
    for arity in [2u32, 3, 4] {
        let kind = ProtocolKind::DirTree { pointers: 4, arity };
        let out = run_workload(&config, kind, w);
        let bits = build_protocol(kind, ProtocolParams::default()).cache_bits_per_line(32);
        t.row(&[
            arity.to_string(),
            out.cycles.to_string(),
            format!("{:.3}", out.cycles as f64 / base.cycles as f64),
            format!("{:.1}", out.stats.write_miss_latency.mean()),
            bits.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "k = 2 is the paper's choice; wider arity flattens the invalidation\n\
         trees slightly at the cost of log n bits per extra child pointer."
    );
}
