//! **Ablation (extension)** — invalidation vs. update writes for
//! Dir₄Tree₂. §3 of the paper mentions both options and evaluates only
//! invalidation; this measures the trade-off: update wins when written
//! data is promptly re-read by many consumers, invalidation wins when
//! writes are private or migratory.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_update`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::ablation_update(&runner));
}
