//! **Ablation (extension)** — invalidation vs. update writes for
//! Dir₄Tree₂. §3 of the paper mentions both options and evaluates only
//! invalidation; this measures the trade-off: update wins when written
//! data is promptly re-read by many consumers, invalidation wins when
//! writes are private or migratory.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_update`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    let inval = ProtocolKind::DirTree { pointers: 4, arity: 2 };
    let update = ProtocolKind::DirTreeUpdate { pointers: 4, arity: 2 };
    println!("Extension ablation: Dir4Tree2 invalidation vs. update writes (16 procs)");
    let mut t = AsciiTable::new(&["workload", "protocol", "cycles", "msgs", "bytes"]);
    for w in [
        // Producer/consumer: one writer, many prompt readers — update's home turf.
        WorkloadKind::Sharing { blocks: 8, rounds: 30 },
        // Migratory RMW: each processor writes in turn — invalidation's home turf.
        WorkloadKind::Migratory { blocks: 8, rounds: 32 },
        // A real app mix.
        WorkloadKind::Floyd { vertices: 24, seed: 1996 },
    ] {
        for kind in [inval, update] {
            let config = MachineConfig::paper_default(16);
            let out = run_workload(&config, kind, w);
            t.row(&[
                w.name(),
                kind.name(),
                out.cycles.to_string(),
                out.stats.critical_messages().to_string(),
                out.stats.bytes.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Update writes keep consumers' copies warm (no refetch after a write)\n\
         but pay a full home transaction for every store and push data bytes\n\
         to all sharers; invalidation pays refetches instead."
    );
}
