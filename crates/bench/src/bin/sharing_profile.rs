//! **Experiment E14** — Weber-Gupta-style invalidation profile: how many
//! other processors hold a copy at the instant of each write.
//!
//! The paper justifies `i = 4` directory pointers by the ASPLOS-III
//! observation that "in many applications, the number of shared copies of
//! a cache block is lower than four, regardless of the system size". This
//! binary measures that distribution for our four applications.
//!
//! Run: `cargo run --release -p dirtree-bench --bin sharing_profile`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    let nodes = 16;
    let apps = [
        WorkloadKind::Mp3d { particles: 600, steps: 4 },
        WorkloadKind::Lu { n: 48 },
        WorkloadKind::Floyd { vertices: 32, seed: 1996 },
        WorkloadKind::Fft { points: 512 },
    ];
    println!("Sharing degree at writes ({nodes} processors, full-map bookkeeping):");
    let mut t = AsciiTable::new(&[
        "workload", "writes", "mean", "p50", "p90", "max", "<= 4 (%)",
    ]);
    for w in apps {
        let out = run_workload(&MachineConfig::paper_default(nodes), ProtocolKind::FullMap, w);
        let h = &out.stats.sharers_at_write;
        // Fraction of writes with at most 4 sharers, from the bucketed
        // histogram: p such that percentile(p) <= 4.
        let mut le4 = 0.0;
        for pct in (1..=100).rev() {
            if h.percentile(pct as f64) <= 4 {
                le4 = pct as f64;
                break;
            }
        }
        t.row(&[
            w.name(),
            h.count().to_string(),
            format!("{:.2}", h.mean()),
            h.percentile(50.0).to_string(),
            h.percentile(90.0).to_string(),
            h.max().to_string(),
            format!("{le4:.0}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The paper (after Weber & Gupta, ASPLOS-III) uses the prevalence of\n\
         low sharing degrees to size the directory at i = 4 pointers; writes\n\
         that do see wide sharing (Floyd's row k) are exactly where the tree\n\
         fan-out pays off."
    );
}
