//! **Experiment E14** — Weber-Gupta-style invalidation profile: how many
//! other processors hold a copy at the instant of each write.
//!
//! The paper justifies `i = 4` directory pointers by the ASPLOS-III
//! observation that "in many applications, the number of shared copies of
//! a cache block is lower than four, regardless of the system size". This
//! binary measures that distribution for our four applications.
//!
//! Run: `cargo run --release -p dirtree-bench --bin sharing_profile`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::sharing_profile(&runner));
}
