//! **Sensitivity study (ours)** — how the Figure-10 protocol ranking
//! responds to the simulator knobs the paper fixes silently: network
//! contention modeling, cache size, and memory latency.
//!
//! Run: `cargo run --release -p dirtree-bench --bin sensitivity`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::cache::CacheConfig;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{MachineConfig, TopologyKind};
use dirtree_workloads::WorkloadKind;

fn ratio(config: &MachineConfig) -> (f64, f64, f64) {
    let w = WorkloadKind::Floyd { vertices: 32, seed: 1996 };
    let fm = run_workload(config, ProtocolKind::FullMap, w).cycles as f64;
    let t4 = run_workload(config, ProtocolKind::DirTree { pointers: 4, arity: 2 }, w).cycles
        as f64;
    let l1 = run_workload(config, ProtocolKind::LimitedNB { pointers: 1 }, w).cycles as f64;
    (fm, t4 / fm, l1 / fm)
}

fn main() {
    println!("Sensitivity of the Floyd-Warshall ranking (16 procs), normalized to full-map:");
    let mut t = AsciiTable::new(&[
        "configuration",
        "fm cycles",
        "Dir4Tree2",
        "Dir1NB",
    ]);
    let base = MachineConfig::paper_default(16);

    let mut rows: Vec<(String, MachineConfig)> = vec![("paper (Table 5)".into(), base)];

    let mut no_contention = base;
    no_contention.net.contention = false;
    rows.push(("no link contention".into(), no_contention));

    let mut wide_links = base;
    wide_links.net.link_width_bits = 64;
    rows.push(("64-bit links".into(), wide_links));

    let mut small_cache = base;
    small_cache.cache = CacheConfig { lines: 256, associativity: 256 };
    rows.push(("2 KB caches (replacement pressure)".into(), small_cache));

    let mut slow_memory = base;
    slow_memory.mem_latency = 20;
    rows.push(("20-cycle memory".into(), slow_memory));

    let mut torus = base;
    torus.topology = TopologyKind::KaryNcube { radix: 4 };
    rows.push(("4-ary 2-cube (torus) instead of hypercube".into(), torus));

    for (name, config) in rows {
        let (fm, t4, l1) = ratio(&config);
        t.row(&[
            name,
            format!("{fm:.0}"),
            format!("{t4:.3}"),
            format!("{l1:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The qualitative ranking (Dir4Tree2 ~ full-map << Dir1NB) should be\n\
         robust to these knobs; replacement pressure is the one regime where\n\
         Dir_iTree_k pays its silent-subtree-kill cost."
    );
}
