//! **Sensitivity study (ours)** — how the Figure-10 protocol ranking
//! responds to the simulator knobs the paper fixes silently: network
//! contention modeling, cache size, and memory latency.
//!
//! Run: `cargo run --release -p dirtree-bench --bin sensitivity`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::sensitivity(&runner));
}
