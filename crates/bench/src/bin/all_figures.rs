//! Run every figure experiment (8–11) in sequence.
//!
//! Run: `cargo run --release -p dirtree-bench --bin all_figures [-- --full]`

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    print!(
        "{}",
        dirtree_bench::experiments::all_figures(&runner, cli.full)
    );
}
