//! Run every figure experiment (8–11) in sequence.
//!
//! Run: `cargo run --release -p dirtree-bench --bin all_figures [-- --full]`

use dirtree_bench::figures::run_figure;
use dirtree_workloads::WorkloadKind;

fn main() {
    let full = dirtree_bench::full_scale();
    let figs: Vec<(&str, WorkloadKind)> = vec![
        (
            "Figure 8",
            if full {
                WorkloadKind::Mp3d { particles: 3000, steps: 10 }
            } else {
                WorkloadKind::Mp3d { particles: 600, steps: 4 }
            },
        ),
        (
            "Figure 9",
            if full { WorkloadKind::Lu { n: 128 } } else { WorkloadKind::Lu { n: 48 } },
        ),
        (
            "Figure 10",
            WorkloadKind::Floyd { vertices: 32, seed: 1996 },
        ),
        (
            "Figure 11",
            if full { WorkloadKind::Fft { points: 1024 } } else { WorkloadKind::Fft { points: 512 } },
        ),
    ];
    for (title, w) in figs {
        run_figure(title, w);
        println!();
    }
}
