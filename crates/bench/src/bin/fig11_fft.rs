//! **Figure 11** — normalized execution time for the FFT.
//!
//! Default: 512 points. `--full` runs 1024 points.
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig11_fft [-- --full]`

use dirtree_bench::figures::run_figure;
use dirtree_workloads::WorkloadKind;

fn main() {
    let w = if dirtree_bench::full_scale() {
        WorkloadKind::Fft { points: 1024 }
    } else {
        WorkloadKind::Fft { points: 512 }
    };
    run_figure("Figure 11", w);
}
