//! **Figure 11** — normalized execution time for the FFT.
//!
//! Default: 512 points. `--full` runs 1024 points.
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig11_fft [-- --full]`

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    print!(
        "{}",
        dirtree_bench::experiments::fig11_fft(&runner, cli.full)
    );
}
