//! **§2 memory-requirement formulas** (experiment E11): total directory
//! bits per protocol as the machine grows.
//!
//! Run: `cargo run -p dirtree-bench --bin memory_overhead`

use dirtree_analysis::formulas::directory_bits;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;

fn main() {
    // Table 5 machine: 16 KB caches of 8-byte blocks; give each node the
    // same amount of shared memory as cache for a like-for-like ratio, and
    // also show a memory-heavy configuration.
    let cache_blocks = 2048u64;
    let mem_blocks = 16 * 1024; // 128 KB of shared memory per node
    let protocols = [
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree { pointers: 4, arity: 2 },
        ProtocolKind::DirTree { pointers: 2, arity: 2 },
    ];

    println!(
        "Directory memory (KiB machine-wide), {mem_blocks} memory blocks and \
         {cache_blocks} cache lines per node:"
    );
    let sizes = [8u32, 16, 32, 64, 256, 1024];
    let mut header: Vec<String> = vec!["protocol".into()];
    header.extend(sizes.iter().map(|n| format!("n={n}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = AsciiTable::new(&header_refs);
    for kind in protocols {
        let mut row = vec![kind.name()];
        for &n in &sizes {
            let bits = directory_bits(kind, n, mem_blocks, cache_blocks);
            row.push(format!("{}", bits / 8 / 1024));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "Full-map grows as B·n² while Dir_iTree_k grows as B·n·2i·log n + C·k·log n (§3)."
    );
}
