//! **§2 memory-requirement formulas** (experiment E11): total directory
//! bits per protocol as the machine grows.
//!
//! Run: `cargo run -p dirtree-bench --bin memory_overhead`

fn main() {
    print!("{}", dirtree_bench::experiments::memory_overhead());
}
