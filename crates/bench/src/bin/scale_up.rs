//! **Beyond the paper (ours)** — the hot-path scaling study: the paper's
//! Figure-10 shapes (Dir_iTree_2 vs full-map vs Dir_4NB) pushed to
//! P ∈ {64, 128, 256} on the single-channel network and to
//! P ∈ {64, 512, 1024} on the virtual-channel machine (3 VCs, adaptive
//! minimal e-cube), instrumented for *simulator* throughput rather than
//! protocol ranking. Runs the sweeps twice — a timed pass as invoked
//! (pass `--no-cache` for a true cold measurement) and a warm pass served
//! from the result cache — and writes the wall-clock side to
//! `<out-dir>/BENCH_sim_hotpath.json` (events/sec, cold vs warm seconds,
//! per-config event counts and queue depths). The committed repo-root
//! `BENCH_sim_hotpath.json` is a snapshot of this output plus the
//! `reproduce_all` cold-run numbers (see EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p dirtree-bench --bin scale_up`
//! CI:  `... --bin scale_up -- --filter P=64 --no-cache --out-dir target/perf_smoke`

use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    let filter = cli.filter.as_deref();

    let t0 = Instant::now();
    let (sizes, cells) = dirtree_bench::experiments::scale_up_cells(&runner, filter);
    let (vc_sizes, vc_cells) = dirtree_bench::experiments::scale_up_vc_cells(&runner, filter);
    let (cr_sizes, cr_cells) =
        dirtree_bench::experiments::scale_up_vc_credited_cells(&runner, filter);
    let cold = t0.elapsed().as_secs_f64();
    assert!(
        !(sizes.is_empty() && vc_sizes.is_empty()),
        "--filter {:?} matches no scale-up size (base P=64/128/256, vc P=64/512/1024)",
        filter.unwrap_or_default()
    );

    // Warm pass: identical specs through a cache-reading runner.
    let mut warm_opts = cli.sweep_options();
    warm_opts.no_cache = false;
    let warm_runner = dirtree_bench::runner::Runner::new(warm_opts);
    let t1 = Instant::now();
    let _ = dirtree_bench::experiments::scale_up_cells(&warm_runner, filter);
    let _ = dirtree_bench::experiments::scale_up_vc_cells(&warm_runner, filter);
    let _ = dirtree_bench::experiments::scale_up_vc_credited_cells(&warm_runner, filter);
    let warm = t1.elapsed().as_secs_f64();

    if !sizes.is_empty() {
        print!(
            "{}",
            dirtree_bench::experiments::scale_up_report(&sizes, &cells)
        );
    }
    if !vc_sizes.is_empty() {
        print!(
            "{}",
            dirtree_bench::experiments::scale_up_vc_report(&vc_sizes, &vc_cells)
        );
    }
    if !cr_sizes.is_empty() {
        print!(
            "{}",
            dirtree_bench::experiments::scale_up_vc_credited_report(&cr_sizes, &cr_cells)
        );
    }

    // (cell, adaptive-routing?, credits) — the grid a cell came from
    // fixes the routing mode and the injection credit bound, which the
    // flat record does not carry.
    let credits = dirtree_bench::experiments::VC_CREDITS;
    let all: Vec<_> = cells
        .iter()
        .map(|c| (c, false, 0))
        .chain(vc_cells.iter().map(|c| (c, true, 0)))
        .chain(cr_cells.iter().map(|c| (c, true, credits)))
        .collect();
    let total_events: u64 = all.iter().map(|(c, ..)| c.record.events).sum();
    let peak_depth: u64 = all
        .iter()
        .map(|(c, ..)| c.record.peak_queue_depth)
        .max()
        .unwrap_or(0);
    let events_per_sec = if cold > 0.0 {
        total_events as f64 / cold
    } else {
        0.0
    };
    println!(
        "scale_up: {} sims, cold {cold:.2}s, warm {warm:.2}s, {total_events} events \
         ({events_per_sec:.0} events/sec cold), peak queue depth {peak_depth}",
        all.len(),
    );

    // Wall-clock readings stay out of the deterministic .jsonl records;
    // they live in this side-channel JSON instead.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"dirtree-bench/sim_hotpath/v3\",");
    let _ = writeln!(
        json,
        "  \"filter\": {},",
        match filter {
            Some(f) => format!("\"{f}\""),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(json, "  \"sims\": {},", all.len());
    let _ = writeln!(json, "  \"cold_seconds\": {cold:.3},");
    let _ = writeln!(json, "  \"warm_seconds\": {warm:.3},");
    let _ = writeln!(json, "  \"total_events\": {total_events},");
    let _ = writeln!(json, "  \"events_per_second_cold\": {events_per_sec:.0},");
    let _ = writeln!(json, "  \"peak_queue_depth\": {peak_depth},");
    let _ = writeln!(json, "  \"configs\": [");
    for (i, (c, adaptive, vc_credits)) in all.iter().enumerate() {
        let r = &c.record;
        let _ = writeln!(
            json,
            "    {{\"protocol\": \"{}\", \"nodes\": {}, \"vcs\": {}, \"adaptive\": {adaptive}, \
             \"vc_credits\": {vc_credits}, \
             \"cycles\": {}, \"events\": {}, \"peak_queue_depth\": {}}}{}",
            r.protocol,
            r.nodes,
            r.net_vcs,
            r.cycles,
            r.events,
            r.peak_queue_depth,
            if i + 1 < all.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let path = runner.options().out_dir.join("BENCH_sim_hotpath.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
