//! **§1 motivation (ours)** — why non-bus networks and directories at all:
//! the shared bus saturates as processors are added, while the binary
//! n-cube keeps scaling. Uses a snooping-free apples-to-apples setup (the
//! same full-map protocol; only the fabric changes).
//!
//! Run: `cargo run --release -p dirtree-bench --bin bus_vs_cube`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::bus_vs_cube(&runner));
}
