//! **§1 motivation (ours)** — why non-bus networks and directories at all:
//! the shared bus saturates as processors are added, while the binary
//! n-cube keeps scaling. Uses a snooping-free apples-to-apples setup (the
//! same full-map protocol; only the fabric changes).
//!
//! Run: `cargo run --release -p dirtree-bench --bin bus_vs_cube`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_net::NetworkConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    println!("Snooping bus vs. directory n-cube (Floyd-Warshall 24v):");
    let mut t = AsciiTable::new(&[
        "procs",
        "snoop/bus cycles",
        "fm/bus cycles",
        "fm/cube cycles",
        "Dir4Tree2/cube cycles",
        "snoop-bus / tree-cube",
    ]);
    let w = WorkloadKind::Floyd { vertices: 24, seed: 1996 };
    for nodes in [2u32, 4, 8, 16, 32] {
        let mut bus = MachineConfig::paper_default(nodes);
        bus.net = NetworkConfig::bus();
        let cube = MachineConfig::paper_default(nodes);
        let snoop = run_workload(&bus, ProtocolKind::Snoop, w);
        let fm_bus = run_workload(&bus, ProtocolKind::FullMap, w);
        let fm_cube = run_workload(&cube, ProtocolKind::FullMap, w);
        let tree = run_workload(
            &cube,
            ProtocolKind::DirTree { pointers: 4, arity: 2 },
            w,
        );
        t.row(&[
            nodes.to_string(),
            snoop.cycles.to_string(),
            fm_bus.cycles.to_string(),
            fm_cube.cycles.to_string(),
            tree.cycles.to_string(),
            format!("{:.2}", snoop.cycles as f64 / tree.cycles as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The paper's §1 premise: \"the single bus becomes the bottleneck in the\n\
         system\" — motivating point-to-point networks and, because they lack a\n\
         broadcast medium, directory-based coherence."
    );
}
