//! **Extension (ours)** — the adaptive write-policy ablation: the four
//! canonical sharing-pattern workloads (producer–consumer pipeline,
//! migratory token ring, read-mostly broadcast, write-shared ping-pong)
//! under static invalidation, static update, and the per-block adaptive
//! protocol, at P ∈ {16, 64, 256}. Asserts the acceptance bar — adaptive
//! within 5% of the better static policy on every workload and strictly
//! cheaper than the worse one on at least two — and writes the cell and
//! verdict data to `<out-dir>/BENCH_adaptive.json`. The committed
//! repo-root `BENCH_adaptive.json` is a snapshot of the full-grid output
//! (see EXPERIMENTS.md).
//!
//! Run: `cargo run --release -p dirtree-bench --bin adaptive_ablation`
//! CI:  `... --bin adaptive_ablation -- --filter P=16 --no-cache --jobs 2
//!       --out-dir target/adaptive_smoke`

use std::fmt::Write as _;

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    let filter = cli.filter.as_deref();

    let (sizes, cells) = dirtree_bench::experiments::adaptive_ablation_cells(&runner, filter);
    assert!(
        !sizes.is_empty(),
        "--filter {:?} matches no adaptive-ablation size (P=16/64/256)",
        filter.unwrap_or_default()
    );
    print!(
        "{}",
        dirtree_bench::experiments::adaptive_ablation_report(&sizes, &cells)
    );

    let verdicts = dirtree_bench::experiments::adaptive_verdicts(&cells);
    dirtree_bench::experiments::assert_adaptive_criterion(&verdicts);
    println!(
        "adaptive_ablation: criterion holds over P={sizes:?} — within 5% of the best \
         static policy on all {} workloads, beats the worst on {}",
        verdicts.len(),
        verdicts.iter().filter(|v| v.beats_worst_static()).count(),
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"schema\": \"dirtree-bench/adaptive_ablation/v1\","
    );
    let _ = writeln!(
        json,
        "  \"filter\": {},",
        match filter {
            Some(f) => format!("\"{f}\""),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(
        json,
        "  \"sizes\": [{}],",
        sizes
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let r = &c.record;
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"protocol\": \"{}\", \"nodes\": {}, \
             \"cycles\": {}, \"messages\": {}, \"bytes\": {}, \
             \"mode_flips_to_update\": {}, \"mode_flips_to_invalidate\": {}, \
             \"pattern_producer_consumer\": {}, \"pattern_read_mostly\": {}, \
             \"pattern_migratory\": {}, \"pattern_write_shared\": {}, \
             \"pattern_private\": {}}}{}",
            r.workload,
            r.protocol,
            r.nodes,
            r.cycles,
            r.messages,
            r.bytes,
            r.mode_flips_to_update,
            r.mode_flips_to_invalidate,
            r.pattern_producer_consumer,
            r.pattern_read_mostly,
            r.pattern_migratory,
            r.pattern_write_shared,
            r.pattern_private,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"verdicts\": [");
    for (i, v) in verdicts.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"invalidate_cycles\": {}, \
             \"update_cycles\": {}, \"adaptive_cycles\": {}, \
             \"vs_best_static\": {:.4}, \"beats_worst_static\": {}}}{}",
            v.workload.name(),
            v.invalidate_cycles,
            v.update_cycles,
            v.adaptive_cycles,
            v.vs_best_static(),
            v.beats_worst_static(),
            if i + 1 < verdicts.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    let path = runner.options().out_dir.join("BENCH_adaptive.json");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
