//! **Model validation (ours)** — analytic write-miss latency vs. the
//! simulator, at controlled sharing degrees. The paper's argument is a
//! latency-shape argument (Θ(P) serialization vs Θ(log P) fan-out); this
//! binary shows both the model and the machine agree on the shape.
//!
//! Run: `cargo run --release -p dirtree-bench --bin latency_model`

fn main() {
    print!("{}", dirtree_bench::experiments::latency_model());
}
