//! **Model validation (ours)** — analytic write-miss latency vs. the
//! simulator, at controlled sharing degrees. The paper's argument is a
//! latency-shape argument (Θ(P) serialization vs Θ(log P) fan-out); this
//! binary shows both the model and the machine agree on the shape.
//!
//! Run: `cargo run --release -p dirtree-bench --bin latency_model`

use dirtree_analysis::formulas::{write_miss_latency_model, LatencyParams};
use dirtree_analysis::tables::AsciiTable;
use dirtree_bench::miss_cost::write_miss_latency_measured;
use dirtree_core::protocol::ProtocolKind;

fn main() {
    let lp = LatencyParams::default();
    let kinds = [
        ProtocolKind::FullMap,
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::DirTree { pointers: 4, arity: 2 },
    ];
    println!("Write-miss critical-path latency, model vs. simulator (32 procs):");
    let mut header = vec!["protocol".to_string()];
    for p in [2u32, 4, 8, 16, 24] {
        header.push(format!("P={p} model"));
        header.push(format!("P={p} meas"));
    }
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = AsciiTable::new(&hdr);
    for kind in kinds {
        let mut row = vec![kind.name()];
        for p in [2u32, 4, 8, 16, 24] {
            row.push(format!("{:.0}", write_miss_latency_model(kind, p as u64, &lp)));
            row.push(format!("{:.0}", write_miss_latency_measured(kind, p)));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "Expected shape: full-map and the lists grow linearly in P; STP and\n\
         Dir4Tree2 grow logarithmically. Absolute agreement is approximate\n\
         (the model ignores secondary contention)."
    );
}
