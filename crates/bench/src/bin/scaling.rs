//! **Beyond the paper (ours)** — the paper stops at 32 processors; this
//! extends the Figure 10 comparison to 64 and 128 to show the trend the
//! conclusion claims ("when the number of processors is large, the new
//! scheme even performs better"): full-map's serialized invalidations and
//! O(n²) directory get worse, the tree's logarithmic fan-out keeps going.
//!
//! Run: `cargo run --release -p dirtree-bench --bin scaling`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::formulas::directory_bits;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    println!("Scaling beyond the paper (Floyd-Warshall 64v, normalized to full-map):");
    let mut t = AsciiTable::new(&[
        "procs",
        "fm cycles",
        "Dir4Tree2",
        "Dir8Tree2",
        "Dir4NB",
        "fm dir KiB",
        "Dir4Tree2 dir KiB",
    ]);
    let w = WorkloadKind::Floyd { vertices: 64, seed: 1996 };
    for nodes in [8u32, 16, 32, 64, 128] {
        let config = MachineConfig::paper_default(nodes);
        let fm = run_workload(&config, ProtocolKind::FullMap, w);
        let t4 = run_workload(&config, ProtocolKind::DirTree { pointers: 4, arity: 2 }, w);
        let t8 = run_workload(&config, ProtocolKind::DirTree { pointers: 8, arity: 2 }, w);
        let l4 = run_workload(&config, ProtocolKind::LimitedNB { pointers: 4 }, w);
        let mem_blocks = 16 * 1024;
        let fm_bits = directory_bits(ProtocolKind::FullMap, nodes, mem_blocks, 0);
        let t4_bits = directory_bits(
            ProtocolKind::DirTree { pointers: 4, arity: 2 },
            nodes,
            mem_blocks,
            0,
        );
        t.row(&[
            nodes.to_string(),
            fm.cycles.to_string(),
            format!("{:.3}", t4.cycles as f64 / fm.cycles as f64),
            format!("{:.3}", t8.cycles as f64 / fm.cycles as f64),
            format!("{:.3}", l4.cycles as f64 / fm.cycles as f64),
            (fm_bits / 8 / 1024).to_string(),
            (t4_bits / 8 / 1024).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "The performance gap and the directory-memory gap both widen with\n\
         machine size — the paper's conclusion, extrapolated."
    );
}
