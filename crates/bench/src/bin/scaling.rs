//! **Beyond the paper (ours)** — the paper stops at 32 processors; this
//! extends the Figure 10 comparison to 64 and 128 to show the trend the
//! conclusion claims ("when the number of processors is large, the new
//! scheme even performs better"): full-map's serialized invalidations and
//! O(n²) directory get worse, the tree's logarithmic fan-out keeps going.
//!
//! Run: `cargo run --release -p dirtree-bench --bin scaling`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::scaling(&runner));
}
