//! **Table 3** — the N₁(j) / N₂(j) recurrences for Dir₂Tree₂, printed
//! next to the insertion-replay measurement.
//!
//! Run: `cargo run -p dirtree-bench --bin table3`

use dirtree_analysis::tables::AsciiTable;
use dirtree_analysis::tree_capacity::{n1, n2, TreeBuilder};

fn main() {
    println!("Table 3: number of processors per tree for Dir2Tree2");
    let mut t = AsciiTable::new(&["level j", "N1(j)", "N2(j)", "replayed total", "N1+N2"]);
    for j in 1..=12u64 {
        // Replay insertions until both trees reach level j.
        let mut b = TreeBuilder::new(2);
        let mut total_at_level = 0;
        loop {
            b.insert();
            if b.max_level() > j as u32 {
                break;
            }
            total_at_level = b.total();
        }
        t.row(&[
            j.to_string(),
            n1(j).to_string(),
            n2(j).to_string(),
            total_at_level.to_string(),
            (n1(j) + n2(j)).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("N1(j) = j (a chain); N2(j) = j(j+1)/2 — as simplified in §3.");
}
