//! **Table 3** — the N₁(j) / N₂(j) recurrences for Dir₂Tree₂, printed
//! next to the insertion-replay measurement.
//!
//! Run: `cargo run -p dirtree-bench --bin table3`

fn main() {
    print!("{}", dirtree_bench::experiments::table3());
}
