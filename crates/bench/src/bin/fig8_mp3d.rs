//! **Figure 8** — normalized execution time for MP3D.
//!
//! Default: a scaled-down run (600 particles, 4 steps). `--full` uses the
//! paper's 3000 particles × 10 steps.
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig8_mp3d [-- --full]`

use dirtree_bench::figures::run_figure;
use dirtree_workloads::WorkloadKind;

fn main() {
    let w = if dirtree_bench::full_scale() {
        WorkloadKind::Mp3d { particles: 3000, steps: 10 }
    } else {
        WorkloadKind::Mp3d { particles: 600, steps: 4 }
    };
    run_figure("Figure 8", w);
}
