//! **Figure 8** — normalized execution time for MP3D.
//!
//! Default: a scaled-down run (600 particles, 4 steps). `--full` uses the
//! paper's 3000 particles × 10 steps.
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig8_mp3d [-- --full]`

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    print!(
        "{}",
        dirtree_bench::experiments::fig8_mp3d(&runner, cli.full)
    );
}
