//! **Ablation E12** — Dir₄Tree₂ replacement policy: the paper's silent
//! `Replace_INV` subtree kill vs. an eager home notification that clears
//! stale root pointers.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_replacement`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    let kind = ProtocolKind::DirTree { pointers: 4, arity: 2 };
    // A cache-thrashing workload plus Floyd (the paper's high-sharing app).
    let workloads = [
        WorkloadKind::Storm { words: 4096, passes: 3 },
        WorkloadKind::Floyd { vertices: 32, seed: 1996 },
    ];
    println!("Ablation E12: Dir4Tree2 replacement policy (16 procs, small cache)");
    let mut t = AsciiTable::new(&[
        "workload",
        "policy",
        "cycles",
        "msgs",
        "repl-invs",
        "read-miss lat",
    ]);
    for w in workloads {
        for silent in [true, false] {
            let mut config = MachineConfig::paper_default(16);
            // A small cache makes replacements frequent.
            config.cache = dirtree_core::cache::CacheConfig {
                lines: 256,
                associativity: 256,
            };
            config.protocol.dir_tree_silent_replace = silent;
            let out = run_workload(&config, kind, w);
            t.row(&[
                w.name(),
                if silent { "silent (paper)" } else { "notify home" }.into(),
                out.cycles.to_string(),
                out.stats.critical_messages().to_string(),
                out.stats.replacement_invalidations.to_string(),
                format!("{:.1}", out.stats.read_miss_latency.mean()),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "The paper argues silent replacement is cheap because most replaced\n\
         blocks are leaves; the notify-home policy pays a message per eviction\n\
         to keep directory pointers precise."
    );
}
