//! **Ablation E12** — Dir₄Tree₂ replacement policy: the paper's silent
//! `Replace_INV` subtree kill vs. an eager home notification that clears
//! stale root pointers.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_replacement`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!(
        "{}",
        dirtree_bench::experiments::ablation_replacement(&runner)
    );
}
