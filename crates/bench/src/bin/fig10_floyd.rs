//! **Figure 10** — normalized execution time for Floyd-Warshall on a
//! 32-vertex random graph (the paper's exact size; no scaling needed).
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig10_floyd`

use dirtree_bench::figures::run_figure;
use dirtree_workloads::WorkloadKind;

fn main() {
    run_figure(
        "Figure 10",
        WorkloadKind::Floyd { vertices: 32, seed: 1996 },
    );
}
