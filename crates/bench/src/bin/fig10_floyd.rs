//! **Figure 10** — normalized execution time for Floyd-Warshall on a
//! 32-vertex random graph (the paper's exact size; no scaling needed).
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig10_floyd`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::fig10_floyd(&runner));
}
