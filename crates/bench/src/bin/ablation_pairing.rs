//! **Ablation E13** — Dir₄Tree₂ invalidation pairing: the paper's
//! even→odd root forwarding (home collects ⌈i/2⌉ acks) vs. the home
//! sending every root its own invalidation.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_pairing`

use dirtree_analysis::experiments::run_workload;
use dirtree_analysis::tables::AsciiTable;
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::MachineConfig;
use dirtree_workloads::WorkloadKind;

fn main() {
    let kind = ProtocolKind::DirTree { pointers: 8, arity: 2 };
    println!("Ablation E13: Dir8Tree2 invalidation pairing (32 procs)");
    let mut t = AsciiTable::new(&[
        "workload",
        "policy",
        "cycles",
        "msgs",
        "write-miss lat (mean)",
        "write-miss lat (max)",
        "hottest controller (busy cyc)",
    ]);
    for w in [
        WorkloadKind::Sharing { blocks: 16, rounds: 40 },
        WorkloadKind::Floyd { vertices: 24, seed: 1996 },
    ] {
        for pairing in [true, false] {
            let mut config = MachineConfig::paper_default(32);
            config.protocol.dir_tree_pairing = pairing;
            let out = run_workload(&config, kind, w);
            t.row(&[
                w.name(),
                if pairing { "even->odd (paper)" } else { "home sends all" }.into(),
                out.cycles.to_string(),
                out.stats.critical_messages().to_string(),
                format!("{:.1}", out.stats.write_miss_latency.mean()),
                out.stats.write_miss_latency.max().to_string(),
                out.stats.max_controller_busy.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Pairing halves the acknowledgements converging on the home module,\n\
         relieving the hot-spot the paper calls out in §3 (write miss)."
    );
}
