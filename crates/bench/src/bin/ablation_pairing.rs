//! **Ablation E13** — Dir₄Tree₂ invalidation pairing: the paper's
//! even→odd root forwarding (home collects ⌈i/2⌉ acks) vs. the home
//! sending every root its own invalidation.
//!
//! Run: `cargo run --release -p dirtree-bench --bin ablation_pairing`

fn main() {
    let (runner, _cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::ablation_pairing(&runner));
}
