//! **Figure 9** — normalized execution time for LU decomposition.
//!
//! Default: 48×48. `--full` uses the paper's 128×128 matrix.
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig9_lu [-- --full]`

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    print!("{}", dirtree_bench::experiments::fig9_lu(&runner, cli.full));
}
