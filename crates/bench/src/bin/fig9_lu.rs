//! **Figure 9** — normalized execution time for LU decomposition.
//!
//! Default: 48×48. `--full` uses the paper's 128×128 matrix.
//!
//! Run: `cargo run --release -p dirtree-bench --bin fig9_lu [-- --full]`

use dirtree_bench::figures::run_figure;
use dirtree_workloads::WorkloadKind;

fn main() {
    let w = if dirtree_bench::full_scale() {
        WorkloadKind::Lu { n: 128 }
    } else {
        WorkloadKind::Lu { n: 48 }
    };
    run_figure("Figure 9", w);
}
