//! **Figures 1, 5 and 7** — the Dir₄Tree₂ forest built by 14 sequential
//! read misses, the merge performed by the 15th, and the write-miss
//! invalidation fan-out over the resulting forest.
//!
//! Run: `cargo run -p dirtree-bench --bin tree_shapes`

fn main() {
    print!("{}", dirtree_bench::experiments::tree_shapes());
}
