//! **Figures 1, 5 and 7** — the Dir₄Tree₂ forest built by 14 sequential
//! read misses, the merge performed by the 15th, and the write-miss
//! invalidation fan-out over the resulting forest.
//!
//! Run: `cargo run -p dirtree-bench --bin tree_shapes`

use dirtree_analysis::tree_capacity::TreeBuilder;

fn print_forest(b: &TreeBuilder, label: &str) {
    println!("{label}");
    for (i, p) in b.pointers().iter().enumerate() {
        match p {
            Some((root, level, size)) => {
                println!("  pointer {i}: -> node {root} (level {level}, {size} nodes)")
            }
            None => println!("  pointer {i}: null"),
        }
    }
}

fn main() {
    // Figure 1: the forest after 14 read misses.
    let mut b = TreeBuilder::new(4);
    for _ in 0..14 {
        b.insert();
    }
    print_forest(&b, "Figure 1 — Dir4Tree2 forest after 14 read misses:");

    // Figure 5: the 15th request merges the two level-2 trees (11 and 13).
    let before: Vec<u32> = b.pointers().iter().flatten().map(|p| p.0).collect();
    b.insert();
    let after: Vec<u32> = b.pointers().iter().flatten().map(|p| p.0).collect();
    let adopted: Vec<u32> = before.iter().filter(|r| !after.contains(r)).copied().collect();
    println!(
        "\nFigure 5 — the 15th read miss: node 15 adopts the equal-height roots {adopted:?}"
    );
    print_forest(&b, "forest after the 15th request:");

    // Figure 7: invalidation fan-out with 15 copies. With pairing, the home
    // sends one Inv per even pointer; odd pointers are invalidated by their
    // even partners; every tree node forwards to its children.
    println!("\nFigure 7 — write-miss invalidation over the 15-copy forest:");
    let live: Vec<(usize, u32, u32)> = b
        .pointers()
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.map(|(r, l, _)| (i, r, l)))
        .collect();
    let mut home_msgs = 0;
    let mut slot = 0;
    while slot < b.pointers().len() {
        let even = live.iter().find(|&&(i, ..)| i == slot);
        let odd = live.iter().find(|&&(i, ..)| i == slot + 1);
        match (even, odd) {
            (Some(&(_, re, _)), Some(&(_, ro, _))) => {
                println!("  home -> root {re} (Inv, also invalidate root {ro})");
                home_msgs += 1;
            }
            (Some(&(_, re, _)), None) => {
                println!("  home -> root {re} (Inv)");
                home_msgs += 1;
            }
            (None, Some(&(_, ro, _))) => {
                println!("  home -> root {ro} (Inv)");
                home_msgs += 1;
            }
            (None, None) => {}
        }
        slot += 2;
    }
    let max_level = live.iter().map(|&(_, _, l)| l).max().unwrap_or(0);
    println!("  home sends {home_msgs} Inv(s) and waits {home_msgs} ack(s);");
    println!(
        "  invalidation depth = tallest tree level = {max_level} \
         (a balanced binary tree of 15 nodes has 4 levels)"
    );
}
