//! Run every table, figure and ablation in sequence and write a combined
//! report to `target/reproduction_report.txt`. The one-command
//! reproduction of the whole paper (≈ minutes at default scale; pass
//! `--full` for the paper's exact workload sizes).
//!
//! Run: `cargo run --release -p dirtree-bench --bin reproduce_all [-- --full]`

use std::fmt::Write as _;
use std::process::Command;

fn main() {
    let full = dirtree_bench::full_scale();
    let bins: &[(&str, bool)] = &[
        ("table1", false),
        ("table3", false),
        ("table4", false),
        ("tree_shapes", false),
        ("memory_overhead", false),
        ("fig8_mp3d", true),
        ("fig9_lu", true),
        ("fig10_floyd", false),
        ("fig11_fft", true),
        ("sharing_profile", false),
        ("latency_model", false),
        ("bus_vs_cube", false),
        ("sensitivity", false),
        ("ablation_replacement", false),
        ("ablation_pairing", false),
        ("ablation_update", false),
        ("ablation_arity", false),
    ];
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.to_path_buf()))
        .expect("locate binary directory");
    let mut report = String::new();
    for (bin, scalable) in bins {
        eprintln!("==> {bin}");
        let mut cmd = Command::new(exe_dir.join(bin));
        if *scalable && full {
            cmd.arg("--full");
        }
        let out = cmd.output().unwrap_or_else(|e| panic!("run {bin}: {e}"));
        let _ = writeln!(report, "==================== {bin} ====================");
        report.push_str(&String::from_utf8_lossy(&out.stdout));
        if !out.status.success() {
            let _ = writeln!(report, "[{bin} FAILED]");
            report.push_str(&String::from_utf8_lossy(&out.stderr));
        }
        report.push('\n');
    }
    let path = std::path::Path::new("target/reproduction_report.txt");
    let _ = std::fs::create_dir_all("target");
    std::fs::write(path, &report).expect("write report");
    println!("{report}");
    eprintln!("report written to {}", path.display());
}
