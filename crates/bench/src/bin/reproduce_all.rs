//! Run every table, figure and ablation in-process and write a combined
//! report to `target/reproduction_report.txt`. The one-command
//! reproduction of the whole paper.
//!
//! All simulations go through the shared sweep runner: they execute on a
//! worker pool (`--jobs`, default: all cores) and results are cached
//! under `target/sweep/cache/`, so a rerun that changes nothing simulates
//! nothing. A panic in one experiment — or any failed simulation inside
//! one — is caught, the remaining experiments still run, and the process
//! exits non-zero with a final `FAILED: [...]` summary.
//!
//! Run: `cargo run --release -p dirtree-bench --bin reproduce_all
//!       [-- --full] [--jobs N] [--no-cache] [--filter SUBSTR]`

use dirtree_bench::experiments::registry;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn main() {
    let (runner, cli) = dirtree_bench::runner_from_args();
    let mut report = String::new();
    let mut failed: Vec<&'static str> = Vec::new();
    let mut ran = 0usize;
    let t0 = std::time::Instant::now();
    for exp in registry() {
        if let Some(f) = &cli.filter {
            if !exp.name.contains(f.as_str()) {
                continue;
            }
        }
        ran += 1;
        eprintln!("==> {}", exp.name);
        let failures_before = runner.failures().len();
        let result = catch_unwind(AssertUnwindSafe(|| (exp.run)(&runner, cli.full)));
        let _ = writeln!(
            report,
            "==================== {} ====================",
            exp.name
        );
        match result {
            Ok(text) => {
                report.push_str(&text);
                // Simulations that panicked inside the runner are caught
                // there and excluded from the report tables; they still
                // fail the experiment.
                let all_failures = runner.failures();
                let sim_failures = &all_failures[failures_before..];
                if !sim_failures.is_empty() {
                    failed.push(exp.name);
                    let _ = writeln!(
                        report,
                        "[{} FAILED: {} simulation(s) panicked]",
                        exp.name,
                        sim_failures.len()
                    );
                    for f in sim_failures {
                        let _ = writeln!(report, "  {}: {}", f.key, f.message);
                    }
                }
            }
            Err(payload) => {
                failed.push(exp.name);
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                let _ = writeln!(report, "[{} FAILED] {msg}", exp.name);
            }
        }
        report.push('\n');
    }

    let path = std::path::Path::new("target/reproduction_report.txt");
    let _ = std::fs::create_dir_all("target");
    std::fs::write(path, &report).expect("write report");
    println!("{report}");
    let (executed, cached) = runner.totals();
    eprintln!(
        "{ran} experiments in {:.1?}: {executed} simulations run, {cached} served from cache \
         ({} jobs); report written to {}",
        t0.elapsed(),
        runner.options().jobs,
        path.display()
    );
    if ran == 0 {
        eprintln!(
            "no experiment matches --filter {:?}",
            cli.filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }
    if !failed.is_empty() {
        println!("FAILED: [{}]", failed.join(", "));
        std::process::exit(1);
    }
}
