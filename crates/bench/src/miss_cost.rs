//! Measurement harness for Table 1: messages per read / write miss at a
//! controlled sharing degree.
//!
//! Runs a scripted scenario on the real machine: `p` distinct processors
//! read one block (staggered far apart so transactions never overlap),
//! then one writer writes it. Message counts are differenced between runs
//! with and without the final operation, yielding the *marginal* cost of
//! the p-th read and of a write over `p` sharers. Counts are critical-path
//! messages (fill acknowledgements excluded, as in the paper's Table 1).

use dirtree_core::protocol::ProtocolKind;
use dirtree_core::types::Addr;
use dirtree_machine::{DriverOp, Machine, MachineConfig, ScriptDriver};

const BLOCK: Addr = 0;
/// Generous stagger so every transaction fully quiesces before the next.
const GAP: u64 = 50_000;

fn run_messages(config: &MachineConfig, kind: ProtocolKind, readers: u32, write: bool) -> u64 {
    let nodes = config.nodes;
    assert!(readers < nodes - 1, "need a spare node for the writer");
    let mut active = Vec::new();
    // Readers are nodes 1..=readers (node 0 is the home of BLOCK).
    for k in 0..readers {
        active.push((
            k + 1,
            vec![DriverOp::Work((k as u64 + 1) * GAP), DriverOp::Read(BLOCK)],
        ));
    }
    if write {
        active.push((
            nodes - 1,
            vec![
                DriverOp::Work((readers as u64 + 2) * GAP),
                DriverOp::Write(BLOCK),
            ],
        ));
    }
    let mut machine = Machine::new(*config, kind);
    let mut driver = ScriptDriver::sparse(nodes, active);
    let out = machine.run(&mut driver);
    out.stats.critical_messages()
}

/// Messages for the `p`-th read miss (marginal cost with `p − 1` existing
/// sharers).
pub fn read_miss_cost(kind: ProtocolKind, p: u32) -> u64 {
    let config = MachineConfig::paper_default(32);
    assert!(p >= 1);
    let with = run_messages(&config, kind, p, false);
    let without = run_messages(&config, kind, p - 1, false);
    with - without
}

/// Messages for a write miss invalidating `p` sharers (writer not among
/// them).
pub fn write_miss_cost(kind: ProtocolKind, p: u32) -> u64 {
    let config = MachineConfig::paper_default(32);
    let with = run_messages(&config, kind, p, true);
    let without = run_messages(&config, kind, p, false);
    with - without
}

/// Measured critical-path latency (cycles) of one write miss over `p`
/// sharers on the 32-node machine.
pub fn write_miss_latency_measured(kind: ProtocolKind, p: u32) -> f64 {
    let config = MachineConfig::paper_default(32);
    let nodes = config.nodes;
    let mut active: Vec<(u32, Vec<DriverOp>)> = (0..p)
        .map(|k| {
            (
                k + 1,
                vec![DriverOp::Work((k as u64 + 1) * GAP), DriverOp::Read(BLOCK)],
            )
        })
        .collect();
    active.push((
        nodes - 1,
        vec![DriverOp::Work((p as u64 + 2) * GAP), DriverOp::Write(BLOCK)],
    ));
    let mut machine = Machine::new(config, kind);
    let mut driver = ScriptDriver::sparse(nodes, active);
    let out = machine.run(&mut driver);
    out.stats.write_miss_latency.mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_map_matches_table1() {
        assert_eq!(read_miss_cost(ProtocolKind::FullMap, 1), 2);
        assert_eq!(read_miss_cost(ProtocolKind::FullMap, 8), 2);
        // 2P + 2 with P = 4.
        assert_eq!(write_miss_cost(ProtocolKind::FullMap, 4), 10);
    }

    #[test]
    fn dir_tree_read_is_always_two() {
        let kind = ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        };
        for p in [1, 2, 5, 9, 15] {
            assert_eq!(read_miss_cost(kind, p), 2, "p = {p}");
        }
    }

    #[test]
    fn singly_list_read_is_three_after_first() {
        assert_eq!(read_miss_cost(ProtocolKind::SinglyList, 1), 2);
        assert_eq!(read_miss_cost(ProtocolKind::SinglyList, 2), 3);
        assert_eq!(read_miss_cost(ProtocolKind::SinglyList, 6), 3);
    }

    #[test]
    fn sci_read_is_four_after_first() {
        assert_eq!(read_miss_cost(ProtocolKind::Sci, 1), 2);
        assert_eq!(read_miss_cost(ProtocolKind::Sci, 5), 4);
    }

    #[test]
    fn stp_read_is_four_after_first() {
        assert_eq!(read_miss_cost(ProtocolKind::Stp { arity: 2 }, 1), 2);
        assert_eq!(read_miss_cost(ProtocolKind::Stp { arity: 2 }, 4), 4);
    }
}
