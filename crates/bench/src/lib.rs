//! # dirtree-bench — experiment binaries and criterion benchmarks
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index). The library holds the whole experiment layer:
//!
//! - [`sweep`] — configuration enumeration ([`sweep::SweepSpec`]) and the
//!   JSON-lines [`sweep::RunRecord`] each simulation produces
//! - [`runner`] — the parallel, cached, deterministic executor
//! - [`figures`] — record-based figure grids (normalized execution time)
//! - [`experiments`] — every table/figure/ablation as a function
//!   returning its report text, plus the [`experiments::registry`] that
//!   `reproduce_all` iterates
//! - [`miss_cost`] — controlled-sharing-degree marginal measurements
//! - [`cli`] — the shared `--jobs/--no-cache/--filter/--full` flags

pub mod cli;
pub mod experiments;
pub mod figures;
pub mod miss_cost;
pub mod runner;
pub mod sweep;

/// Parse the common `--full` flag: experiment binaries default to scaled
/// sizes that finish in seconds and use the paper's exact sizes with
/// `--full`.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The runner every binary uses, configured from the process arguments.
pub fn runner_from_args() -> (runner::Runner, cli::Cli) {
    let cli = cli::Cli::parse();
    (runner::Runner::new(cli.sweep_options()), cli)
}
