//! # dirtree-bench — experiment binaries and criterion benchmarks
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index). The library part holds the shared measurement harnesses.

pub mod figures;
pub mod miss_cost;

/// Parse the common `--full` flag: experiment binaries default to scaled
/// sizes that finish in seconds and use the paper's exact sizes with
/// `--full`.
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full")
}
