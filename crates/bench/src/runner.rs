//! Parallel, cached, deterministic execution of [`SweepSpec`]s.
//!
//! A [`Runner`] owns a worker pool policy (`--jobs`), a result cache under
//! `target/sweep/cache/`, and an output directory for JSON-lines records.
//! Executing a spec:
//!
//! 1. Each config is looked up in the cache by
//!    `(config_hash, code_hash)` — `code_hash` fingerprints the running
//!    executable, so results are invalidated whenever the simulator code
//!    changes.
//! 2. Cache misses are simulated in-process on a `std::thread::scope`
//!    pool; workers pull config indices from a shared atomic counter.
//! 3. Records are assembled **in spec order** (never completion order) and
//!    written as one JSONL file per spec, so output is byte-identical
//!    regardless of `--jobs`.
//!
//! Panicking simulations are caught per-config: the failure is recorded in
//! the outcome (and never cached), the rest of the sweep continues.

use crate::sweep::{workload_key, RunRecord, SweepConfig, SweepSpec};
use dirtree_machine::{Machine, MsgTrace};
use dirtree_workloads::trace::{record_ops, OpTrace, ReplayDriver};
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Execution policy for a [`Runner`].
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub jobs: usize,
    /// Ignore (but still refresh) the result cache.
    pub no_cache: bool,
    /// Root for results: JSONL under `<out_dir>/`, cache under
    /// `<out_dir>/cache/`.
    pub out_dir: PathBuf,
    /// Dump a Chrome-trace (`trace_events`) JSON per config under
    /// `<out_dir>/trace/`. Forces every config to simulate (a cached
    /// record carries no event timeline to dump).
    pub trace: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            no_cache: false,
            out_dir: PathBuf::from("target/sweep"),
            trace: false,
        }
    }
}

/// One config's failure: the canonical key plus the panic message.
#[derive(Clone, Debug)]
pub struct RunFailure {
    pub key: String,
    pub message: String,
}

/// The result of running one spec.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// One record per non-failed config, in spec order.
    pub records: Vec<RunRecord>,
    /// Configs actually simulated this call.
    pub executed: usize,
    /// Configs served from the result cache.
    pub cached: usize,
    pub failures: Vec<RunFailure>,
}

/// Parallel cached sweep executor. Cheap to share by reference; all
/// methods take `&self`.
pub struct Runner {
    opts: SweepOptions,
    code_hash: u64,
    /// Lifetime counters across all specs this runner has executed, for
    /// end-of-run reporting by `reproduce_all`.
    total_executed: AtomicUsize,
    total_cached: AtomicUsize,
    all_failures: Mutex<Vec<RunFailure>>,
}

impl Runner {
    pub fn new(opts: SweepOptions) -> Self {
        Self {
            opts,
            code_hash: code_hash(),
            total_executed: AtomicUsize::new(0),
            total_cached: AtomicUsize::new(0),
            all_failures: Mutex::new(Vec::new()),
        }
    }

    pub fn options(&self) -> &SweepOptions {
        &self.opts
    }

    /// Total (executed, cached) across every spec run so far.
    pub fn totals(&self) -> (usize, usize) {
        (
            self.total_executed.load(Ordering::Relaxed),
            self.total_cached.load(Ordering::Relaxed),
        )
    }

    /// Every failure across every spec run so far.
    pub fn failures(&self) -> Vec<RunFailure> {
        self.all_failures.lock().unwrap().clone()
    }

    /// Run every config of `spec` (cache-aware, parallel) and write
    /// `<out_dir>/<spec.name>.jsonl`. Records come back in spec order.
    pub fn run(&self, spec: &SweepSpec) -> SweepOutcome {
        let n = spec.configs.len();
        // Resolve cache hits up front, single-threaded and in order.
        let mut slots: Vec<Option<Result<RunRecord, String>>> = Vec::with_capacity(n);
        let mut todo: Vec<usize> = Vec::new();
        for (i, config) in spec.configs.iter().enumerate() {
            let hit = if self.opts.trace {
                None // tracing re-simulates: cached records have no timeline
            } else {
                self.cache_lookup(config)
            };
            match hit {
                Some(record) => slots.push(Some(Ok(record))),
                None => {
                    slots.push(None);
                    todo.push(i);
                }
            }
        }
        let cached = n - todo.len();

        // Simulate the misses on a scoped worker pool. Workers claim
        // indices from `next`; each result lands in its own slot, so the
        // final assembly below is in spec order no matter which worker
        // finished when.
        type ConfigResult = Result<(RunRecord, Option<String>), String>;
        let results: Vec<Mutex<Option<ConfigResult>>> =
            todo.iter().map(|_| Mutex::new(None)).collect();
        let jobs = self.opts.jobs.clamp(1, todo.len().max(1));
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = todo.get(t) else { break };
                    let outcome = run_config(&spec.configs[i], self.opts.trace);
                    *results[t].lock().unwrap() = Some(outcome);
                });
            }
        });
        for (t, &i) in todo.iter().enumerate() {
            let outcome = results[t]
                .lock()
                .unwrap()
                .take()
                .expect("worker pool exited without producing a result");
            if let Ok((record, trace)) = &outcome {
                self.cache_store(&spec.configs[i], record);
                if let Some(trace_json) = trace {
                    self.write_trace(spec, i, &spec.configs[i], trace_json);
                }
            }
            slots[i] = Some(outcome.map(|(record, _)| record));
        }

        let mut outcome = SweepOutcome {
            executed: todo.len(),
            cached,
            ..SweepOutcome::default()
        };
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.expect("every slot is filled above") {
                Ok(record) => outcome.records.push(record),
                Err(message) => outcome.failures.push(RunFailure {
                    key: spec.configs[i].key(),
                    message,
                }),
            }
        }
        self.total_executed
            .fetch_add(outcome.executed, Ordering::Relaxed);
        self.total_cached
            .fetch_add(outcome.cached, Ordering::Relaxed);
        self.all_failures
            .lock()
            .unwrap()
            .extend(outcome.failures.iter().cloned());

        self.write_jsonl(spec, &outcome.records);
        outcome
    }

    /// Run a single config, panicking on failure. For experiment code
    /// whose result shape makes per-config failure handling pointless.
    pub fn run_one(&self, config: &SweepConfig) -> RunRecord {
        let mut spec = SweepSpec::new("adhoc");
        spec.push(config.clone());
        let mut out = self.run(&spec);
        if let Some(f) = out.failures.first() {
            panic!("config {} failed: {}", f.key, f.message);
        }
        out.records.remove(0)
    }

    fn cache_dir(&self) -> PathBuf {
        self.opts.out_dir.join("cache")
    }

    fn cache_path(&self, config: &SweepConfig) -> PathBuf {
        self.cache_dir().join(format!(
            "{:016x}-{:016x}.json",
            config.config_hash(),
            self.code_hash
        ))
    }

    fn cache_lookup(&self, config: &SweepConfig) -> Option<RunRecord> {
        if self.opts.no_cache {
            return None;
        }
        let text = fs::read_to_string(self.cache_path(config)).ok()?;
        let record = RunRecord::from_json(text.trim_end()).ok()?;
        // Guard against config-hash collisions: the stored key must match.
        (record.key == config.key()).then_some(record)
    }

    fn cache_store(&self, config: &SweepConfig, record: &RunRecord) {
        // Best-effort: a cache write failure only costs a re-simulation.
        let _ = write_atomic(&self.cache_path(config), &record.to_json());
    }

    /// Write one config's Chrome-trace JSON. The filename is fully
    /// determined by (spec name, spec index, config hash), so repeated
    /// `--trace` runs overwrite rather than accumulate.
    fn write_trace(&self, spec: &SweepSpec, idx: usize, config: &SweepConfig, json: &str) {
        let name = if spec.name.is_empty() {
            "adhoc"
        } else {
            &spec.name
        };
        let path = self.opts.out_dir.join("trace").join(format!(
            "{name}-{idx:03}-{:016x}.trace.json",
            config.config_hash()
        ));
        if let Err(e) = write_atomic(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    fn write_jsonl(&self, spec: &SweepSpec, records: &[RunRecord]) {
        if spec.name.is_empty() {
            return;
        }
        let mut body = String::new();
        for record in records {
            body.push_str(&record.to_json());
            body.push('\n');
        }
        let path = self.opts.out_dir.join(format!("{}.jsonl", spec.name));
        if let Err(e) = write_atomic(&path, &body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Ring-buffer capacity for `--trace` timelines: enough for every message
/// of the bundled experiment workloads; older events beyond it are dropped
/// (the trace is for inspection, the metrics are exact regardless).
const TRACE_CAPACITY: usize = 1 << 18;

/// Simulate one config, catching panics into an `Err` message. With
/// `trace`, the machine records every send and the Chrome-trace JSON is
/// returned alongside the record.
fn run_config(config: &SweepConfig, trace: bool) -> Result<(RunRecord, Option<String>), String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut machine = Machine::new(config.machine, config.protocol);
        if trace {
            machine.set_trace(MsgTrace::new(TRACE_CAPACITY, None));
        }
        let mut driver = ReplayDriver::new(op_trace_for(config));
        let outcome = machine.run(&mut driver);
        let trace_json = machine.take_trace().map(|t| t.chrome_trace_json());
        (RunRecord::from_outcome(config, &outcome), trace_json)
    }));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Process-wide operation-trace cache: one recording per
/// `(workload, nodes)` pair, shared by every protocol config and every
/// spec the process runs. The recording (thread-rendezvous) cost is paid
/// once; all simulations replay it with zero context switches — see
/// `dirtree_workloads::trace` for why the streams are config-independent.
/// The per-key `OnceLock` lets distinct workloads record concurrently
/// under `--jobs` while duplicate requests block on the first recorder;
/// the trace content is a pure function of the key either way, so sweep
/// records stay byte-identical at any jobs level.
fn op_trace_for(config: &SweepConfig) -> Arc<OpTrace> {
    type Slot = Arc<OnceLock<Arc<OpTrace>>>;
    static TRACES: OnceLock<Mutex<HashMap<(String, u32), Slot>>> = OnceLock::new();
    let workload = config.effective_workload();
    let key = (workload_key(&workload), config.machine.nodes);
    let slot: Slot = {
        let mut map = TRACES.get_or_init(Default::default).lock().unwrap();
        map.entry(key).or_default().clone()
    };
    slot.get_or_init(|| {
        let mut w = workload.build(config.machine.nodes);
        Arc::new(record_ops(&mut w))
    })
    .clone()
}

/// Write `text` (plus trailing newline) atomically: tmp file + rename, so
/// concurrent runners and killed processes never leave torn files.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let dir = path.parent().expect("cache paths always have a parent");
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp-{}-{:x}",
        std::process::id(),
        crate::sweep::hash_str(path.to_string_lossy().as_ref())
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        if !text.ends_with('\n') {
            f.write_all(b"\n")?;
        }
    }
    fs::rename(&tmp, path)
}

/// Fingerprint of the running executable (FxHash over its bytes), so cache
/// entries are keyed to the exact simulator build that produced them.
fn code_hash() -> u64 {
    static HASH: OnceLock<u64> = OnceLock::new();
    *HASH.get_or_init(|| {
        use std::hash::Hasher;
        let mut h = dirtree_sim::hash::FxHasher::default();
        match std::env::current_exe().and_then(fs::read) {
            Ok(bytes) => h.write(&bytes),
            // No executable to fingerprint (odd platform): fall back to a
            // constant, losing only cache invalidation on rebuild.
            Err(_) => h.write(b"dirtree-code-hash-unavailable"),
        }
        h.finish()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirtree_core::protocol::ProtocolKind;
    use dirtree_machine::MachineConfig;
    use dirtree_workloads::WorkloadKind;

    fn tiny_spec(name: &str) -> SweepSpec {
        SweepSpec::grid(
            name,
            WorkloadKind::Floyd {
                vertices: 8,
                seed: 1996,
            },
            &[2, 4],
            &[
                ProtocolKind::FullMap,
                ProtocolKind::DirTree {
                    pointers: 4,
                    arity: 2,
                },
            ],
            MachineConfig::test_default,
        )
    }

    fn runner_in(dir: &Path, jobs: usize) -> Runner {
        Runner::new(SweepOptions {
            jobs,
            out_dir: dir.to_path_buf(),
            ..SweepOptions::default()
        })
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dirtree-runner-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let d1 = scratch_dir("serial");
        let d8 = scratch_dir("parallel");
        let r1 = runner_in(&d1, 1);
        let r8 = runner_in(&d8, 8);
        let spec = tiny_spec("determinism");
        let o1 = r1.run(&spec);
        let o8 = r8.run(&spec);
        assert!(o1.failures.is_empty() && o8.failures.is_empty());
        let f1 = fs::read(d1.join("determinism.jsonl")).unwrap();
        let f8 = fs::read(d8.join("determinism.jsonl")).unwrap();
        assert_eq!(f1, f8, "JSONL output must not depend on --jobs");
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d8);
    }

    #[test]
    fn vc_adaptive_output_is_byte_identical_to_serial() {
        // Adaptive routing breaks ties on live per-VC queue depths, so
        // this pins that the tie-break (and the whole VC timing path) is
        // a pure function of the config — never of worker scheduling.
        let d1 = scratch_dir("vc-serial");
        let d8 = scratch_dir("vc-parallel");
        let r1 = runner_in(&d1, 1);
        let r8 = runner_in(&d8, 8);
        let mut spec = tiny_spec("vc_determinism");
        for c in &mut spec.configs {
            c.machine.net.vcs = 3;
            c.machine.net.adaptive = true;
        }
        let o1 = r1.run(&spec);
        let o8 = r8.run(&spec);
        assert!(o1.failures.is_empty() && o8.failures.is_empty());
        let f1 = fs::read(d1.join("vc_determinism.jsonl")).unwrap();
        let f8 = fs::read(d8.join("vc_determinism.jsonl")).unwrap();
        assert_eq!(f1, f8, "VC JSONL output must not depend on --jobs");
        let _ = fs::remove_dir_all(&d1);
        let _ = fs::remove_dir_all(&d8);
    }

    #[test]
    fn warm_cache_executes_zero_simulations() {
        let dir = scratch_dir("cache");
        let spec = tiny_spec("warm");
        let cold = runner_in(&dir, 4).run(&spec);
        assert_eq!(cold.executed, spec.configs.len());
        assert_eq!(cold.cached, 0);
        // Fresh runner, same out_dir and same code hash: all hits.
        let warm = runner_in(&dir, 4).run(&spec);
        assert_eq!(warm.executed, 0, "warm rerun must simulate nothing");
        assert_eq!(warm.cached, spec.configs.len());
        // The records and JSONL are identical either way.
        assert_eq!(
            cold.records
                .iter()
                .map(RunRecord::to_json)
                .collect::<Vec<_>>(),
            warm.records
                .iter()
                .map(RunRecord::to_json)
                .collect::<Vec<_>>(),
        );
        // no_cache bypasses lookups again.
        let mut opts = SweepOptions {
            jobs: 4,
            no_cache: true,
            out_dir: dir.clone(),
            ..SweepOptions::default()
        };
        let bypass = Runner::new(opts.clone()).run(&spec);
        assert_eq!(bypass.executed, spec.configs.len());
        opts.no_cache = false;
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_option_dumps_deterministic_chrome_traces_and_skips_cache_hits() {
        let dir = scratch_dir("trace");
        let spec = tiny_spec("traced");
        // Warm the cache first, then run with tracing: every config must
        // re-simulate (cached records have no timeline).
        runner_in(&dir, 2).run(&spec);
        let traced = Runner::new(SweepOptions {
            jobs: 2,
            out_dir: dir.clone(),
            trace: true,
            ..SweepOptions::default()
        })
        .run(&spec);
        assert_eq!(traced.executed, spec.configs.len());
        assert_eq!(traced.cached, 0);
        let trace_dir = dir.join("trace");
        let mut files: Vec<_> = fs::read_dir(&trace_dir)
            .expect("trace dir exists")
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        assert_eq!(files.len(), spec.configs.len());
        let first = fs::read_to_string(&files[0]).unwrap();
        assert!(first.starts_with("{\"displayTimeUnit\""));
        assert!(first.contains("\"traceEvents\":["));
        assert!(first.contains("\"name\":\"read_req\""));
        // Re-running with --trace overwrites byte-identically.
        Runner::new(SweepOptions {
            jobs: 1,
            out_dir: dir.clone(),
            trace: true,
            ..SweepOptions::default()
        })
        .run(&spec);
        assert_eq!(fs::read_to_string(&files[0]).unwrap(), first);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_are_reported_not_cached_and_do_not_abort_the_sweep() {
        let dir = scratch_dir("failures");
        let runner = runner_in(&dir, 2);
        let mut spec = tiny_spec("with-failure");
        // nodes=3 on a binary hypercube is invalid and panics in
        // Machine::new; the sweep must survive it.
        let mut bad = spec.configs[0].clone();
        bad.machine.nodes = 3;
        spec.configs.insert(1, bad);
        let out = runner.run(&spec);
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.records.len(), spec.configs.len() - 1);
        assert!(out.failures[0].key.contains("nodes=3"));
        assert_eq!(runner.failures().len(), 1);
        // The failed config is never cached: rerunning executes it again.
        let again = runner_in(&dir, 2).run(&spec);
        assert_eq!(again.executed, 1);
        assert_eq!(again.failures.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
