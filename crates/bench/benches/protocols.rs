//! Criterion benchmarks over whole-machine protocol runs: how fast the
//! simulator executes each protocol on a fixed contended workload, and
//! the relative cost of the invalidation machinery at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dirtree_core::protocol::ProtocolKind;
use dirtree_machine::{DriverOp, Machine, MachineConfig, ScriptDriver};
use std::hint::black_box;

fn scripts(nodes: u32) -> Vec<Vec<DriverOp>> {
    (0..nodes as u64)
        .map(|n| {
            let mut ops = Vec::new();
            for i in 0..64u64 {
                ops.push(DriverOp::Read(i % 16));
                if (i + n) % 8 == 0 {
                    ops.push(DriverOp::Write(i % 16));
                }
            }
            ops.push(DriverOp::Barrier(0));
            ops
        })
        .collect()
}

fn bench_protocol_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_run_16procs");
    for kind in [
        ProtocolKind::FullMap,
        ProtocolKind::LimitedNB { pointers: 4 },
        ProtocolKind::LimitLess { pointers: 4 },
        ProtocolKind::SinglyList,
        ProtocolKind::Sci,
        ProtocolKind::Stp { arity: 2 },
        ProtocolKind::SciTree,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut m = Machine::new(MachineConfig::paper_default(16), kind);
                    let mut d = ScriptDriver::new(scripts(16));
                    black_box(m.run(&mut d).cycles)
                })
            },
        );
    }
    g.finish();
}

fn bench_invalidation_scaling(c: &mut Criterion) {
    // One write over P sharers: simulated write-miss latency work per
    // protocol family (sequential vs logarithmic fan-out).
    let mut g = c.benchmark_group("invalidation_storm_32procs");
    for kind in [
        ProtocolKind::FullMap,
        ProtocolKind::Sci,
        ProtocolKind::DirTree {
            pointers: 4,
            arity: 2,
        },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let nodes = 32;
                    let mut active: Vec<(u32, Vec<DriverOp>)> = (1..30u32)
                        .map(|k| (k, vec![DriverOp::Work(k as u64 * 2000), DriverOp::Read(0)]))
                        .collect();
                    active.push((31, vec![DriverOp::Work(100_000), DriverOp::Write(0)]));
                    let mut m = Machine::new(MachineConfig::paper_default(nodes), kind);
                    let mut d = ScriptDriver::sparse(nodes, active);
                    black_box(m.run(&mut d).cycles)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_protocol_runs, bench_invalidation_scaling);
criterion_main!(benches);
