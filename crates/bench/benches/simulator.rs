//! Criterion microbenchmarks for the simulation substrate itself: event
//! queue throughput, network routing + contention bookkeeping, cache
//! tag-store operations, and the deterministic RNG.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dirtree_core::cache::{Cache, CacheConfig};
use dirtree_core::types::LineState;
use dirtree_net::{Network, NetworkConfig, Topology};
use dirtree_sim::{EventQueue, SimRng};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        let mut rng = SimRng::new(1);
        b.iter_batched(
            || {
                (0..1024u64)
                    .map(|_| rng.gen_range(1_000_000))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q = EventQueue::new();
                let mut sorted = times.clone();
                sorted.sort_unstable();
                for &t in &sorted {
                    q.push(t, t);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc = acc.wrapping_add(v);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    for nodes in [8u32, 32, 256] {
        g.bench_function(format!("send_contended_n{nodes}"), |b| {
            b.iter_batched(
                || Network::new(Topology::hypercube(nodes), NetworkConfig::default()),
                |mut net| {
                    let mut t = 0;
                    for i in 0..512u32 {
                        let src = i % nodes;
                        let dst = (i * 7 + 3) % nodes;
                        t = net.send(t / 2, src, dst, 16);
                    }
                    black_box(t)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/alloc_touch_paper_geometry", |b| {
        b.iter_batched(
            || Cache::new(CacheConfig::paper_default()),
            |mut cache| {
                for a in 0..4096u64 {
                    cache.allocate(a);
                    cache.set_state(a, LineState::V);
                    cache.touch(a / 2);
                }
                black_box(cache.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/gen_range_1k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc = acc.wrapping_add(rng.gen_range(1000));
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_network,
    bench_cache,
    bench_rng
);
criterion_main!(benches);
