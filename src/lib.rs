//! # dirtree — Dir<sub>i</sub>Tree<sub>k</sub> hybrid cache coherence
//!
//! A from-scratch reproduction of *"An Efficient Hybrid Cache Coherence
//! Protocol for Shared Memory Multiprocessors"* (Chang & Bhuyan, ICPP 1996):
//! the Dir<sub>i</sub>Tree<sub>k</sub> protocol, eight baseline directory /
//! linked-list / tree protocols, a cycle-level multiprocessor simulator over
//! a wormhole-routed binary n-cube, and the execution-driven workloads
//! (MP3D, LU, Floyd-Warshall, FFT) used in the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`sim`] — deterministic discrete-event substrate,
//! * [`net`] — k-ary n-cube network with wormhole timing,
//! * [`coherence`] — the protocols themselves (the paper's contribution
//!   lives in [`coherence::dir::dir_tree`]),
//! * [`machine`] — the simulated multiprocessor,
//! * [`workloads`] — execution-driven applications,
//! * [`analysis`] — analytic models and the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use dirtree::prelude::*;
//!
//! // A 8-processor machine running Dir4Tree2 on the paper's parameters.
//! let config = MachineConfig::paper_default(8);
//! let outcome = run_workload(
//!     &config,
//!     ProtocolKind::DirTree { pointers: 4, arity: 2 },
//!     WorkloadKind::Floyd { vertices: 16, seed: 1 },
//! );
//! assert!(outcome.cycles > 0);
//! ```

pub use dirtree_analysis as analysis;
pub use dirtree_core as coherence;
pub use dirtree_machine as machine;
pub use dirtree_net as net;
pub use dirtree_sim as sim;
pub use dirtree_workloads as workloads;

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use dirtree_analysis::experiments::run_workload;
    pub use dirtree_core::protocol::ProtocolKind;
    pub use dirtree_machine::{Machine, MachineConfig};
    pub use dirtree_net::{Network, NetworkConfig, Topology};
    pub use dirtree_sim::SimRng;
    pub use dirtree_workloads::WorkloadKind;
}
