//! Offline shim for the subset of [crossbeam](https://docs.rs/crossbeam)
//! used by this workspace: `crossbeam::channel::{bounded, Sender,
//! Receiver}`, backed by `std::sync::mpsc::sync_channel`.
//!
//! The workspace only uses private one-producer/one-consumer rendezvous
//! channels (capacity 0 or 1), which `sync_channel` models with identical
//! blocking semantics, so determinism of the simulation rendezvous is
//! preserved.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Bounded blocking channel; capacity 0 is a rendezvous channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Sending half; clonable like crossbeam's.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }

        pub fn try_send(&self, value: T) -> Result<(), mpsc::TrySendError<T>> {
            self.inner.try_send(value)
        }
    }

    /// Receiving half (single-consumer, unlike crossbeam's — sufficient
    /// for this workspace's private per-thread channels).
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }
}
