//! Offline shim for the subset of [criterion](https://docs.rs/criterion)
//! used by this workspace's benches.
//!
//! Each benchmark runs a short warm-up, then measures wall-clock time for
//! a fixed budget (~300 ms or 50 iterations, whichever is larger in
//! coverage) and prints `name ... <mean>/iter` to stdout. There is no
//! statistical analysis, plotting, or baseline comparison — just enough
//! to keep `cargo bench` building, running, and useful for eyeballing
//! relative cost.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility, the
/// shim measures each batch element individually either way.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Display-formatted benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter<D: Display>(p: D) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new<D: Display, P: Display>(name: D, p: P) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Re-export so `criterion::black_box` resolves like the real crate.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const BUDGET: Duration = Duration::from_millis(300);

/// Measurement driver handed to every benchmark closure.
pub struct Bencher {
    /// (iterations, total measured time) of the last run, for reporting.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher { result: None }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_end = Instant::now() + WARMUP;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let end = start + BUDGET;
        while Instant::now() < end {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), start.elapsed()));
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_end = Instant::now() + WARMUP;
        while Instant::now() < warm_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let deadline = Instant::now() + BUDGET;
        while Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), measured));
    }
}

fn report(name: &str, result: Option<(u64, Duration)>) {
    match result {
        Some((iters, total)) => {
            let per = total.as_nanos() / iters as u128;
            println!("{name:<50} {per:>12} ns/iter ({iters} iters)");
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

/// Top-level benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.result);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.result);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.result);
        self
    }

    pub fn finish(self) {}
}

/// Collects benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes --bench (and possibly filters); the shim
            // runs everything regardless.
            $($group();)+
        }
    };
}
