//! Test configuration and the deterministic RNG behind every strategy.

/// Mirror of `proptest::test_runner::Config`, exposed in the prelude as
/// `ProptestConfig`. Only `cases` is honoured; the other fields exist so
/// `Config { cases: n, ..Config::default() }` spellings (the idiomatic
/// form against real proptest, which has many more fields) keep working.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated inputs per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this shim ignores regression files
    /// (counterexamples are pinned as explicit tests instead).
    pub failure_persistence: Option<()>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 1024,
            failure_persistence: None,
        }
    }
}

/// SplitMix64 generator. Seeded from (test path, case index) so every
/// run of the suite sees the identical input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one property test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounding (Lemire); bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}
