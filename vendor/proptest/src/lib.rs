//! Offline shim for the subset of [proptest](https://docs.rs/proptest) used
//! by this workspace.
//!
//! The build environment cannot reach a crate registry, so this crate
//! re-implements — with the same names and module paths — exactly the API
//! surface the workspace's property tests exercise: the [`proptest!`]
//! macro, `prop_assert*` macros, [`prop_oneof!`], [`strategy::Strategy`]
//! with `prop_map`, [`collection::vec`], `any::<T>()`, ranges as integer
//! strategies, tuple strategies, and [`test_runner::Config`]
//! (`ProptestConfig`).
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` rendering via the ordinary `assert!` machinery.
//! - **Deterministic seeding.** Each case's RNG is seeded from
//!   (module path, test name, case index), so runs are bit-reproducible
//!   without `.proptest-regressions` files (which are ignored).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable prelude, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal `#[test]` that generates `config.cases` inputs
/// and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// `assert!` under proptest's traditional name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's traditional name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's traditional name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Real proptest rejects the case and draws a fresh one; without
/// shrinking the cheapest faithful behaviour is to skip the case body.
/// Callers must therefore not rely on post-`prop_assume!` code running
/// for every case (none of ours do).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Weighted (`w => strategy`) or unweighted union of strategies sharing a
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
}
