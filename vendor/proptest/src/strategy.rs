//! Strategies: composable recipes for generating test inputs.

use crate::test_runner::TestRng;

/// A recipe for producing values of one type from the deterministic RNG.
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// yields the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retry until `f` accepts a value (bounded; panics if the predicate
    /// rejects 1000 draws in a row).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `strategy.prop_filter(reason, f)`.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// Object-safe generation, so heterogeneous strategies can share a box.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (`prop_oneof!` arms, `.boxed()`).
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> BoxedStrategy<V> {
    pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> Self {
        BoxedStrategy { inner: Box::new(s) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Weighted union over same-valued strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!()
    }
}

/// `any::<T>()`: the canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-domain generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain wrapped to zero.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}
